/**
 * @file
 * Fair, locally-spinning queue-based reader-writer lock (Mellor-Crummey
 * & Scott, PPoPP '91), extended with the consensus-object machinery of
 * core/reactive_queue.hpp so it can serve as the high-contention
 * protocol of the reactive rwlock.
 *
 * Readers and writers join a single FIFO queue with fetch&store on the
 * tail and spin on a flag in their *own* queue node, so every waiter
 * polls a distinct cache line. Consecutive readers overlap: a reader
 * that reaches the front propagates the grant to an immediately
 * following reader, and a reader arriving behind an *active* reader
 * joins it without queuing a full wait. Writers are granted alone, in
 * arrival order; readers that arrive after a waiting writer queue
 * behind it (no starvation in either direction).
 *
 * Auxiliary centralized state (`reader_count`, `next_writer`) is
 * touched O(1) times per acquisition — it hands the lock from the last
 * leaving reader to the next writer — so the protocol keeps the queue
 * lock's O(1)-remote-references property that makes it win at high
 * contention.
 *
 * Reactive extensions (unused in standalone operation):
 *  - the tail doubles as the protocol's consensus object, with a
 *    distinguished INVALID sentinel marking the protocol retired;
 *  - waiters can be signalled INVALID instead of GO, aborting to the
 *    dispatcher to retry with the valid protocol;
 *  - a process holding the other protocol's valid consensus object can
 *    capture an INVALID tail (`acquire_invalid_write`), becoming the
 *    queue's writer while validating it, and a holding writer can
 *    retire the queue (`invalidate`), waking every waiter with INVALID.
 *
 * Per-node wait/successor state is packed into one atomic word: the
 * GO / INVALID signal bits and the successor-class bits must be read
 * and written together (a reader registering behind a waiting reader
 * must atomically verify the predecessor is still waiting), which the
 * original expresses as a CAS on a two-field record.
 */
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"
#include "rw/rw_concepts.hpp"

namespace reactive {

/**
 * MCS-style fair queue rwlock with local spinning.
 *
 * @tparam P Platform model.
 */
template <Platform P>
class QueueRwLock {
  public:
    // Node state word: signal bits (set by the granting predecessor or
    // the invalidator) plus successor-class bits (set by the successor).
    static constexpr std::uint32_t kGoBit = 1u;
    static constexpr std::uint32_t kInvalidBit = 2u;
    static constexpr std::uint32_t kSuccReaderBit = 4u;
    static constexpr std::uint32_t kSuccWriterBit = 8u;

    enum class Kind : std::uint32_t { kReader = 0, kWriter = 1 };

    /// Per-acquisition queue node; must live from start to end.
    struct Node {
        typename P::template Atomic<Node*> next{nullptr};
        typename P::template Atomic<std::uint32_t> state{0};
        Kind kind = Kind::kReader;  // written by owner before enqueue
    };

    /// How an acquisition attempt concluded.
    enum class Outcome {
        kAcquiredEmpty,   ///< got the lock, queue was empty (low contention)
        kAcquiredWaited,  ///< got the lock after queuing
        kInvalid,         ///< protocol retired; retry with the other one
    };

    /// @param initially_valid false leaves the tail INVALID (the state a
    ///        reactive algorithm starts its non-designated protocols in).
    explicit QueueRwLock(bool initially_valid = true)
    {
        tail_.store(initially_valid ? nullptr : invalid_tail(),
                    std::memory_order_relaxed);
    }

    // ---- plain blocking interface (RwLock concept) -------------------

    void lock_read(Node& node)
    {
        const Outcome o = start_read(node);
        assert(o != Outcome::kInvalid &&
               "invalidated lock used through the plain interface");
        (void)o;
    }

    void unlock_read(Node& node) { end_read(node); }

    void lock_write(Node& node)
    {
        const Outcome o = start_write(node);
        assert(o != Outcome::kInvalid &&
               "invalidated lock used through the plain interface");
        (void)o;
    }

    void unlock_write(Node& node) { end_write(node); }

    // ---- queue protocol proper ---------------------------------------

    /// Attempts a shared acquisition with @p node.
    Outcome start_read(Node& node)
    {
        return start_read_with(node,
                               [this](Node& n) { return wait_for_signal(n); });
    }

    /// Shared acquisition whose blocking wait runs through @p site's
    /// hint-dispatched await (waiting/reactive/wait_site.hpp); @p wr
    /// receives the wait cost when the wait actually ran. The grant is
    /// pushed into the node by the predecessor, so the predicate is
    /// pure — no acquiring action. Wakes are the composing lock's
    /// obligation (ReactiveRwLock broadcasts after every queue op).
    template <typename Site, typename Result>
    Outcome start_read(Node& node, Site& site, Result& wr)
    {
        return start_read_with(node, [&](Node& n) {
            return wait_for_signal(n, site, wr);
        });
    }

    /**
     * Non-blocking shared attempt: wins only an *empty* valid queue
     * (tail == nullptr); a busy or retired queue fails immediately as
     * kInvalid. Backs the std try_lock_shared facade — spurious
     * failure under contention is permitted there.
     */
    Outcome try_start_read(Node& node)
    {
        node.kind = Kind::kReader;
        node.next.store(nullptr, std::memory_order_relaxed);
        node.state.store(0, std::memory_order_relaxed);
        Node* expected = nullptr;
        if (!tail_.compare_exchange_strong(expected, &node,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
            return Outcome::kInvalid;
        reader_count_.fetch_add(1, std::memory_order_seq_cst);
        node.state.fetch_or(kGoBit, std::memory_order_acq_rel);
        propagate_reader_grant(node);
        return Outcome::kAcquiredEmpty;
    }

    /// Releases a shared acquisition.
    void end_read(Node& node)
    {
        Node* succ = node.next.load(std::memory_order_acquire);
        Node* expected = &node;
        if (succ != nullptr ||
            !tail_.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
            while ((succ = node.next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            // A waiting writer behind us becomes the reader group's
            // designated heir; the *last* leaving reader wakes it.
            if (node.state.load(std::memory_order_acquire) & kSuccWriterBit)
                next_writer_.store(succ, std::memory_order_seq_cst);
        }
        if (reader_count_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
            Node* w = next_writer_.exchange(nullptr,
                                            std::memory_order_seq_cst);
            if (w != nullptr)
                w->state.fetch_or(kGoBit, std::memory_order_release);
        }
    }

    /// Attempts an exclusive acquisition with @p node.
    Outcome start_write(Node& node)
    {
        return start_write_with(
            node, [this](Node& n) { return wait_for_signal(n); });
    }

    /// Exclusive acquisition with a site-dispatched wait; see the
    /// start_read overload.
    template <typename Site, typename Result>
    Outcome start_write(Node& node, Site& site, Result& wr)
    {
        return start_write_with(node, [&](Node& n) {
            return wait_for_signal(n, site, wr);
        });
    }

    /**
     * Non-blocking exclusive attempt: fails immediately (kInvalid)
     * unless the queue's tail is empty, the lock is valid, and no
     * reader group is inside. The reader pre-check fails the common
     * contended case without dirtying the tail line, but it is not
     * airtight: between it and the tail CAS a reader can win the
     * empty tail, a second reader can join it, and the joiner — now
     * the tail — can leave, clearing the tail while the first reader
     * is still inside. The Dekker handshake with end_read
     * (dekker_claim_empty) detects that residue, and the attempt then
     * *retracts* the node (retract_or_commit_write) instead of
     * waiting out an application-controlled read-side critical
     * section, so the try blocks only in the narrow case where
     * another thread has already enqueued a blocking acquisition
     * behind it. Backs the std try_lock facade; failure may be
     * spurious.
     */
    Outcome try_start_write(Node& node)
    {
        if (reader_count_.load(std::memory_order_seq_cst) != 0)
            return Outcome::kInvalid;  // readers inside: fail the try
        node.kind = Kind::kWriter;
        node.next.store(nullptr, std::memory_order_relaxed);
        node.state.store(0, std::memory_order_relaxed);
        Node* expected = nullptr;
        if (!tail_.compare_exchange_strong(expected, &node,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
            return Outcome::kInvalid;
        if (dekker_claim_empty(node))
            return Outcome::kAcquiredEmpty;
        return retract_or_commit_write(node);
    }

    /// Releases an exclusive acquisition.
    void end_write(Node& node)
    {
        Node* succ = node.next.load(std::memory_order_acquire);
        Node* expected = &node;
        if (succ != nullptr ||
            !tail_.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
            while ((succ = node.next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            if (succ->kind == Kind::kReader)
                reader_count_.fetch_add(1, std::memory_order_seq_cst);
            succ->state.fetch_or(kGoBit, std::memory_order_release);
        }
    }

    // ---- consensus-object entry points (reactive rwlock only) --------

    /**
     * Captures the INVALID tail, making @p node the writer of a freshly
     * validated queue. Must be called only by a process holding the
     * valid consensus object of the other protocol (serialization of
     * protocol changes). Competing bogus chains from late
     * wrong-protocol arrivals are waited out.
     */
    void acquire_invalid_write(Node& node)
    {
        for (;;) {
            node.kind = Kind::kWriter;
            node.next.store(nullptr, std::memory_order_relaxed);
            node.state.store(0, std::memory_order_relaxed);
            Node* pred = tail_.exchange(&node, std::memory_order_acq_rel);
            if (pred == invalid_tail()) {
                node.state.fetch_or(kGoBit, std::memory_order_acq_rel);
                return;
            }
            assert(pred != nullptr &&
                   "queue must not be valid-free while another protocol "
                   "is valid");
            // We appended onto a bogus chain; its head will dismantle
            // it and signal us INVALID. Wait it out and retry.
            pred->next.store(&node, std::memory_order_release);
            while ((node.state.load(std::memory_order_acquire) &
                    (kGoBit | kInvalidBit)) == 0)
                P::pause();
        }
    }

    /**
     * Retires the queue protocol: swings the tail to INVALID and walks
     * the chain from @p head signalling INVALID to every node. Callers:
     * the queue's holding *writer* performing a protocol change (head =
     * its own node; exclusivity guarantees reader_count == 0 and
     * next_writer == nullptr, so no auxiliary state needs repair), or
     * the internal bogus-chain cleanup.
     */
    void invalidate(Node* head)
    {
        Node* tail = tail_.exchange(invalid_tail(), std::memory_order_acq_rel);
        while (head != tail) {
            Node* next;
            while ((next = head->next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            head->state.fetch_or(kInvalidBit, std::memory_order_release);
            head = next;
        }
        head->state.fetch_or(kInvalidBit, std::memory_order_release);
    }

    // ---- racy inspection (tests, monitoring) -------------------------

    bool is_invalid() const
    {
        return tail_.load(std::memory_order_relaxed) == invalid_tail();
    }

    std::uint32_t reader_count() const
    {
        return reader_count_.load(std::memory_order_relaxed);
    }

  private:
    /// White-box access for tests/test_rw.cpp: retract_or_commit_write
    /// resolves a race (the drained-reader-group window) that no
    /// sequence of complete public calls can reproduce on the
    /// deterministic simulator, so its branches are driven directly.
    friend struct QueueRwLockTestPeer;

    static Node* invalid_tail()
    {
        return reinterpret_cast<Node*>(static_cast<std::uintptr_t>(1));
    }

    /// A reader with reader predecessor @p pred atomically registers as
    /// its reader successor, verifying in the same step that @p pred is
    /// still a plain waiting node. True = registered (or @p pred is
    /// invalidated): the caller must block — the grant will arrive from
    /// @p pred's propagation (or the invalidator's chain walk). False =
    /// @p pred is already active: the caller joins it immediately.
    static bool reader_must_block(Node& pred)
    {
        std::uint32_t expected = 0;
        if (pred.state.compare_exchange_strong(expected, kSuccReaderBit,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire))
            return true;
        return (expected & kInvalidBit) != 0;
    }

    /// Propagates this reader's grant to an immediately following
    /// reader (registered via kSuccReaderBit), so consecutive readers
    /// overlap.
    void propagate_reader_grant(Node& node)
    {
        if (node.state.load(std::memory_order_acquire) & kSuccReaderBit) {
            Node* succ;
            while ((succ = node.next.load(std::memory_order_acquire)) ==
                   nullptr)
                P::pause();
            reader_count_.fetch_add(1, std::memory_order_seq_cst);
            succ->state.fetch_or(kGoBit, std::memory_order_release);
        }
    }

    /**
     * The empty-tail writer handshake: the queue is empty, but a
     * departing reader group may still be draining. Hand ourselves
     * over as the next writer and take the lock only if no reader is
     * left to do the handoff. The store/load and the reader side's
     * fetch_sub/exchange (end_read) are all seq_cst: a Dekker-style
     * store-then-load handshake, so either we observe the readers or
     * the last leaving reader observes our registration. True =
     * self-granted; false = registered, and the grant (or a
     * retraction, for tries) is the caller's problem.
     */
    bool dekker_claim_empty(Node& node)
    {
        next_writer_.store(&node, std::memory_order_seq_cst);
        if (reader_count_.load(std::memory_order_seq_cst) == 0 &&
            next_writer_.exchange(nullptr, std::memory_order_seq_cst) ==
                &node) {
            node.state.fetch_or(kGoBit, std::memory_order_acq_rel);
            return true;
        }
        return false;
    }

    /**
     * Unwinds try_start_write's failed Dekker handshake: a drained
     * reader group is still inside, and a try must not wait out its
     * application-controlled critical section. Withdrawal from
     * next_writer_ must come first — once the last leaving reader has
     * exchanged our node out of it, the GO signal is in flight and
     * the node cannot be retired (a reuse of the node would race with
     * the stale signal), so that case commits: the lock is ours as
     * soon as the handoff lands. After a successful withdrawal the
     * tail CAS can fail only because a successor enqueued behind us;
     * a mid-queue node cannot leave an MCS-style queue, so that case
     * re-registers and takes the normal handoff — blocking, but only
     * when another thread has already blocked behind us anyway.
     */
    Outcome retract_or_commit_write(Node& node)
    {
        Node* expected = &node;
        if (!next_writer_.compare_exchange_strong(expected, nullptr,
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_seq_cst))
            return wait_for_signal(node) ? Outcome::kAcquiredWaited
                                         : Outcome::kInvalid;
        expected = &node;
        if (tail_.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed))
            return Outcome::kInvalid;  // fully retracted: clean failed try
        // Committed by a successor: redo the empty-tail handshake.
        if (dekker_claim_empty(node))
            return Outcome::kAcquiredWaited;
        return wait_for_signal(node) ? Outcome::kAcquiredWaited
                                     : Outcome::kInvalid;
    }

    /// Shared-acquisition body, parameterized on the blocking wait
    /// (@p wait(node) -> true on GO, false on INVALID).
    template <typename Waiter>
    Outcome start_read_with(Node& node, Waiter&& wait)
    {
        node.kind = Kind::kReader;
        node.next.store(nullptr, std::memory_order_relaxed);
        node.state.store(0, std::memory_order_relaxed);
        Node* pred = tail_.exchange(&node, std::memory_order_acq_rel);
        if (pred == invalid_tail()) {
            // We head a bogus post-retirement chain; dismantle it so
            // anyone queued behind us retries too.
            invalidate(&node);
            return Outcome::kInvalid;
        }
        Outcome out;
        if (pred == nullptr) {
            reader_count_.fetch_add(1, std::memory_order_seq_cst);
            node.state.fetch_or(kGoBit, std::memory_order_acq_rel);
            out = Outcome::kAcquiredEmpty;
        } else if (pred->kind == Kind::kWriter ||
                   reader_must_block(*pred)) {
            // Predecessor is a writer, a still-waiting reader we just
            // registered with (it will propagate the grant), or an
            // invalidated node (the invalidator's chain walk will reach
            // us through the link we are about to publish). Block.
            pred->next.store(&node, std::memory_order_release);
            if (!wait(node))
                return Outcome::kInvalid;
            out = Outcome::kAcquiredWaited;
        } else {
            // Predecessor is an *active* reader: join it immediately.
            reader_count_.fetch_add(1, std::memory_order_seq_cst);
            pred->next.store(&node, std::memory_order_release);
            node.state.fetch_or(kGoBit, std::memory_order_acq_rel);
            out = Outcome::kAcquiredWaited;
        }
        propagate_reader_grant(node);
        return out;
    }

    /// Exclusive-acquisition body, parameterized like start_read_with.
    template <typename Waiter>
    Outcome start_write_with(Node& node, Waiter&& wait)
    {
        node.kind = Kind::kWriter;
        node.next.store(nullptr, std::memory_order_relaxed);
        node.state.store(0, std::memory_order_relaxed);
        Node* pred = tail_.exchange(&node, std::memory_order_acq_rel);
        if (pred == invalid_tail()) {
            invalidate(&node);
            return Outcome::kInvalid;
        }
        if (pred == nullptr) {
            if (dekker_claim_empty(node))
                return Outcome::kAcquiredEmpty;
            return wait(node) ? Outcome::kAcquiredWaited : Outcome::kInvalid;
        }
        pred->state.fetch_or(kSuccWriterBit, std::memory_order_release);
        pred->next.store(&node, std::memory_order_release);
        return wait(node) ? Outcome::kAcquiredWaited : Outcome::kInvalid;
    }

    /// Spins on the node's own state word; true = GO, false = INVALID.
    bool wait_for_signal(Node& node)
    {
        std::uint32_t s;
        while (((s = node.state.load(std::memory_order_acquire)) &
                (kGoBit | kInvalidBit)) == 0)
            P::pause();
        return (s & kGoBit) != 0;
    }

    /// Site-dispatched twin of wait_for_signal (pure predicate: the
    /// grant/invalid bits are pushed into the node by others).
    template <typename Site, typename Result>
    bool wait_for_signal(Node& node, Site& site, Result& wr)
    {
        std::uint32_t s = 0;
        wr = site.await([&] {
            return ((s = node.state.load(std::memory_order_acquire)) &
                    (kGoBit | kInvalidBit)) != 0;
        });
        return (s & kGoBit) != 0;
    }

    // Tail is the hot enqueue point; the reader-count and writer-handoff
    // words are written on different paths — keep each on its own line.
    alignas(kCacheLineSize) typename P::template Atomic<Node*> tail_{nullptr};
    alignas(kCacheLineSize)
        typename P::template Atomic<std::uint32_t> reader_count_{0};
    alignas(kCacheLineSize)
        typename P::template Atomic<Node*> next_writer_{nullptr};
};

}  // namespace reactive
