/**
 * @file
 * Centralized test-and-test-and-set style reader-writer lock.
 *
 * All state lives in one cache line: bit 0 is the writer bit, bit 31 is
 * the INVALID bit (the consensus-object sentinel used by the reactive
 * rwlock; never set in standalone use), and the remaining bits count
 * active readers in units of kReaderUnit. Readers read-poll until the
 * writer bit clears, then optimistically fetch&add a reader unit and
 * back out if a writer slipped in; writers read-poll until the word is
 * zero, then compare&swap the writer bit. Both sides use randomized
 * exponential backoff after failed attempts (Section 3.1.1).
 *
 * This is the low-contention half of the reactive rwlock: a read
 * acquisition is a single fetch&add on a cached line, and an
 * uncontended write acquisition is a single compare&swap. Under write
 * contention the line ping-pongs exactly like a TTS mutex word —
 * every release triggers an invalidation round over all pollers — and
 * under heavy reader traffic the fetch&add stream serializes at the
 * line's home directory; both regimes are where the queue protocol
 * (queue_rw_lock.hpp) takes over.
 *
 * Writer preference/fairness: none. Writers can starve under a
 * continuous reader stream (the thesis' centralized protocols make the
 * same trade); the queue protocol is the fair one.
 */
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "platform/backoff.hpp"
#include "platform/platform_concept.hpp"
#include "rw/rw_concepts.hpp"

namespace reactive {

/**
 * Centralized reader-writer lock (single word + backoff).
 *
 * @tparam P Platform model.
 */
template <Platform P>
class SimpleRwLock {
  public:
    /// No per-acquisition state; kept for RwLock interface uniformity.
    struct Node {};

    /// Outcome of a single non-blocking acquisition attempt (the
    /// primitive the reactive dispatcher composes with its own
    /// mode-aware retry loop).
    enum class Attempt : std::uint32_t {
        kAcquired,  ///< success
        kBusy,      ///< conflicting holder; poll again
        kInvalid,   ///< protocol retired (reactive use only)
    };

    SimpleRwLock() = default;
    explicit SimpleRwLock(BackoffParams backoff) : backoff_params_(backoff) {}

    // ---- plain blocking interface (RwLock concept) -------------------

    void lock_read(Node&)
    {
        ExpBackoff<P> backoff(backoff_params_);
        for (;;) {
            // Read-poll while a writer is visibly inside (cache-local).
            while (word_.load(std::memory_order_relaxed) & kWriterBit)
                P::pause();
            const Attempt a = try_lock_read();
            if (a == Attempt::kAcquired)
                return;
            assert(a != Attempt::kInvalid &&
                   "invalidated lock used through the plain interface");
            backoff.pause();
        }
    }

    void unlock_read(Node&) { unlock_read(); }

    void lock_write(Node&)
    {
        ExpBackoff<P> backoff(backoff_params_);
        for (;;) {
            while (word_.load(std::memory_order_relaxed) != 0)
                P::pause();
            const Attempt a = try_lock_write();
            if (a == Attempt::kAcquired)
                return;
            assert(a != Attempt::kInvalid &&
                   "invalidated lock used through the plain interface");
            backoff.pause();
        }
    }

    void unlock_write(Node&) { unlock_write(); }

    // ---- single-attempt primitives (reactive dispatcher) -------------

    /// One read-acquisition attempt: optimistic fetch&add, backed out
    /// if a writer (or retirement) raced in between test and add.
    Attempt try_lock_read()
    {
        const std::uint32_t seen = word_.load(std::memory_order_relaxed);
        if (seen & kInvalidBit)
            return Attempt::kInvalid;
        if (seen & kWriterBit)
            return Attempt::kBusy;
        const std::uint32_t prev =
            word_.fetch_add(kReaderUnit, std::memory_order_acquire);
        if (prev & (kWriterBit | kInvalidBit)) {
            word_.fetch_sub(kReaderUnit, std::memory_order_release);
            return (prev & kInvalidBit) ? Attempt::kInvalid : Attempt::kBusy;
        }
        return Attempt::kAcquired;
    }

    /// One write-acquisition attempt: compare&swap from the empty word.
    Attempt try_lock_write()
    {
        std::uint32_t expected = 0;
        if (word_.compare_exchange_strong(expected, kWriterBit,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed))
            return Attempt::kAcquired;
        return (expected & kInvalidBit) ? Attempt::kInvalid : Attempt::kBusy;
    }

    void unlock_read()
    {
        word_.fetch_sub(kReaderUnit, std::memory_order_release);
    }

    /// Write release. An RMW, not a store: the word may transiently
    /// carry reader units from optimistic fetch&adds that are about to
    /// back themselves out, and a blind store would erase them (their
    /// back-out fetch&sub would then wrap the count).
    void unlock_write()
    {
        word_.fetch_sub(kWriterBit, std::memory_order_release);
    }

    // ---- consensus-object entry points (reactive rwlock only) --------

    /// Retires the protocol. Caller must hold the write lock, so the
    /// word is kWriterBit plus possibly some transient optimistic
    /// reader units; one RMW swaps the writer bit for the INVALID bit,
    /// preserving those units for their owners' back-outs.
    void invalidate_from_writer()
    {
        word_.fetch_add(kInvalidBit - kWriterBit, std::memory_order_release);
    }

    /// Designates the protocol and frees it. Caller must hold the other
    /// protocol's consensus object (serialization of protocol changes).
    /// Also an RMW, preserving transient optimistic reader units.
    void validate_free()
    {
        word_.fetch_sub(kInvalidBit, std::memory_order_release);
    }

    // ---- racy inspection (tests, monitoring) -------------------------

    std::uint32_t readers() const
    {
        return (word_.load(std::memory_order_relaxed) & ~kInvalidBit) /
               kReaderUnit;
    }

    bool has_writer() const
    {
        return (word_.load(std::memory_order_relaxed) & kWriterBit) != 0;
    }

    bool is_invalid() const
    {
        return (word_.load(std::memory_order_relaxed) & kInvalidBit) != 0;
    }

  private:
    static constexpr std::uint32_t kWriterBit = 1u;
    static constexpr std::uint32_t kInvalidBit = 1u << 31;
    static constexpr std::uint32_t kReaderUnit = 2u;

    typename P::template Atomic<std::uint32_t> word_{0};
    BackoffParams backoff_params_{};
};

}  // namespace reactive
