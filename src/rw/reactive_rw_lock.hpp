/**
 * @file
 * The reactive reader-writer lock: dynamically selects between the
 * centralized counter protocol (simple_rw_lock.hpp, best at low
 * contention — one fetch&add per read acquisition) and the fair queue
 * protocol (queue_rw_lock.hpp, best at high contention — local spinning
 * and O(1) remote references per acquisition).
 *
 * This is the consensus-object construction of the reactive spin lock
 * (core/reactive_lock.hpp, thesis Sections 3.2.5-3.3.1) applied to a
 * primitive with *two* contention axes — reader parallelism and writer
 * exclusivity:
 *
 *  - **Consensus objects.** The simple protocol's word is its consensus
 *    object (a reserved INVALID bit marks it retired); the queue
 *    protocol's tail is its own (an INVALID sentinel, exactly as in the
 *    reactive mutex). The two are never simultaneously free-and-valid,
 *    so possessing a freshly-acquired valid protocol *is* possessing
 *    the lock; a process executing a retired protocol observes INVALID
 *    and retries through the dispatcher.
 *  - **Protocol changes are made only by a lock-holding writer.** A
 *    writer excludes readers and writers of both protocols, so it holds
 *    the full consensus — the rwlock analogue of "changes are made only
 *    by the lock holder". Readers never switch and never touch policy
 *    state; their acquisitions are pure protocol executions. This keeps
 *    the C-serializability argument of Section 3.2.5 intact even though
 *    read acquisitions overlap.
 *  - **The mode variable is only a hint**: it routes the dispatcher and
 *    is usually read-cached; racing it is benign by the invariant above.
 *  - **Monitoring rides on waiting** (Section 3.2.6): the writer-side
 *    signals are the mutex path's signals verbatim — failed acquisition
 *    attempts in simple mode (fed to `Policy::on_tts_acquire`) and
 *    empty-queue acquisitions in queue mode (`Policy::on_queue_acquire`)
 *    — so all three switching policies of core/policy.hpp apply
 *    unchanged.
 *
 * The release token rides inside the Node, so ReactiveRwLock satisfies
 * the plain RwLock concept and is a drop-in replacement for either
 * static protocol ("the interface to the application program remains
 * constant", Section 1.1).
 */
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>

#include "core/policy.hpp"
#include "platform/backoff.hpp"
#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"
#include "rw/queue_rw_lock.hpp"
#include "rw/rw_concepts.hpp"
#include "rw/simple_rw_lock.hpp"

namespace reactive {

/// Tunables for the reactive rwlock's contention monitors.
struct ReactiveRwLockParams {
    /// Failed write-acquisition attempts within one acquisition that
    /// mark it "contended" (the simple->queue signal).
    std::uint32_t write_retry_limit = 8;
    /// Backoff while spinning on the simple protocol.
    BackoffParams backoff = BackoffParams::for_contenders(64);
    /// Optimistic simple-protocol fast path before consulting the mode
    /// hint (the rwlock analogue of Section 3.7.3's optimistic
    /// test&set). Disable only for ablation experiments.
    bool optimistic_simple = true;
};

/**
 * Reactive reader-writer lock selecting between the centralized and
 * queue protocols.
 *
 * @tparam P      Platform model.
 * @tparam Policy switching policy (Section 3.4); shared with the
 *                reactive mutex via the SwitchPolicy concept.
 */
template <Platform P, SwitchPolicy Policy = AlwaysSwitchPolicy>
class ReactiveRwLock {
  public:
    /// Which protocol currently services requests (the hint variable).
    enum class Mode : std::uint32_t { kSimple = 0, kQueue = 1 };

    /// Release token: protocol held plus any pending protocol change.
    /// Only writers carry the switch variants.
    enum class ReleaseMode : std::uint32_t {
        kSimple,          ///< release the simple protocol
        kQueue,           ///< release the queue protocol
        kSimpleToQueue,   ///< writer release + change simple -> queue
        kQueueToSimple,   ///< writer release + change queue -> simple
    };

    /// Per-acquisition context; the queue node and the release token.
    struct Node {
        typename QueueRwLock<P>::Node qnode;
        ReleaseMode rm{ReleaseMode::kSimple};
    };

    ReactiveRwLock() : ReactiveRwLock(ReactiveRwLockParams{}, Policy{}) {}

    explicit ReactiveRwLock(ReactiveRwLockParams params,
                            Policy policy = Policy{})
        : queue_(/*initially_valid=*/false), params_(params), policy_(policy)
    {
        // Initial state: simple valid and free, queue invalid,
        // mode = simple (the low-contention protocol, as in Figure 3.27).
        mode_->store(static_cast<std::uint32_t>(Mode::kSimple),
                     std::memory_order_relaxed);
    }

    // ---- RwLock interface --------------------------------------------

    void lock_read(Node& n)
    {
        using Attempt = typename SimpleRwLock<P>::Attempt;
        // Optimistic fast path: a valid-and-writer-free simple word
        // admits the reader regardless of the (possibly stale) hint.
        // No monitoring: readers never feed the policy.
        if (params_.optimistic_simple &&
            simple_.try_lock_read() == Attempt::kAcquired) {
            n.rm = ReleaseMode::kSimple;
            return;
        }
        Mode m = mode();
        for (;;) {
            if (m == Mode::kSimple) {
                if (try_read_simple()) {
                    n.rm = ReleaseMode::kSimple;
                    return;
                }
                m = Mode::kQueue;
            } else {
                if (queue_.start_read(n.qnode) !=
                    QueueRwLock<P>::Outcome::kInvalid) {
                    n.rm = ReleaseMode::kQueue;
                    return;
                }
                m = Mode::kSimple;
            }
        }
    }

    void unlock_read(Node& n)
    {
        if (n.rm == ReleaseMode::kSimple)
            simple_.unlock_read();
        else
            queue_.end_read(n.qnode);
    }

    void lock_write(Node& n)
    {
        using Attempt = typename SimpleRwLock<P>::Attempt;
        // Optimistic compare&swap on the simple word (Section 3.7.3).
        // As in the reactive mutex, the fast path performs no
        // monitoring: an uncontended win says nothing reliable and
        // would break streaks that spinning acquirers are building.
        if (params_.optimistic_simple &&
            simple_.try_lock_write() == Attempt::kAcquired) {
            n.rm = ReleaseMode::kSimple;
            return;
        }
        Mode m = mode();
        for (;;) {
            if (m == Mode::kSimple) {
                if (auto r = try_write_simple()) {
                    n.rm = *r;
                    return;
                }
                m = Mode::kQueue;
            } else {
                if (auto r = try_write_queue(n)) {
                    n.rm = *r;
                    return;
                }
                m = Mode::kSimple;
            }
        }
    }

    void unlock_write(Node& n)
    {
        switch (n.rm) {
        case ReleaseMode::kSimple:
            simple_.unlock_write();
            break;
        case ReleaseMode::kQueue:
            queue_.end_write(n.qnode);
            break;
        case ReleaseMode::kSimpleToQueue:
            release_simple_to_queue(n);
            break;
        case ReleaseMode::kQueueToSimple:
            release_queue_to_simple(n);
            break;
        }
    }

    // ---- monitoring (tests, experiments) -----------------------------

    /// Current protocol hint.
    Mode mode() const
    {
        return static_cast<Mode>(mode_.value.load(std::memory_order_relaxed));
    }

    /// Number of completed protocol changes.
    std::uint64_t protocol_changes() const { return protocol_changes_; }

    /// Policy state access (in-consensus callers only).
    Policy& policy() { return policy_; }

  private:
    using Attempt = typename SimpleRwLock<P>::Attempt;
    using QOutcome = typename QueueRwLock<P>::Outcome;

    /// Simple-protocol read acquisition: spin with backoff while a
    /// writer is inside; false if the protocol was retired or the hint
    /// moved on (caller retries with the queue protocol).
    bool try_read_simple()
    {
        ExpBackoff<P> backoff(params_.backoff);
        for (;;) {
            switch (simple_.try_lock_read()) {
            case Attempt::kAcquired:
                return true;
            case Attempt::kInvalid:
                return false;
            case Attempt::kBusy:
                break;
            }
            backoff.pause();
            if (mode_.value.load(std::memory_order_relaxed) !=
                static_cast<std::uint32_t>(Mode::kSimple))
                return false;
        }
    }

    /// Simple-protocol write acquisition: spin with backoff, count
    /// failed attempts, and feed the policy on success (the caller then
    /// holds full exclusivity, so policy state is safe to touch).
    std::optional<ReleaseMode> try_write_simple()
    {
        ExpBackoff<P> backoff(params_.backoff);
        std::uint32_t retries = 0;
        for (;;) {
            switch (simple_.try_lock_write()) {
            case Attempt::kAcquired: {
                const bool contended = retries > params_.write_retry_limit;
                return policy_.on_tts_acquire(contended)
                           ? ReleaseMode::kSimpleToQueue
                           : ReleaseMode::kSimple;
            }
            case Attempt::kInvalid:
                return std::nullopt;
            case Attempt::kBusy:
                ++retries;
                break;
            }
            backoff.pause();
            if (mode_.value.load(std::memory_order_relaxed) !=
                static_cast<std::uint32_t>(Mode::kSimple))
                return std::nullopt;
        }
    }

    /// Queue-protocol write acquisition; an empty queue signals low
    /// contention. nullopt when the protocol was retired.
    std::optional<ReleaseMode> try_write_queue(Node& n)
    {
        switch (queue_.start_write(n.qnode)) {
        case QOutcome::kAcquiredEmpty:
            return policy_.on_queue_acquire(/*empty=*/true)
                       ? ReleaseMode::kQueueToSimple
                       : ReleaseMode::kQueue;
        case QOutcome::kAcquiredWaited:
            return policy_.on_queue_acquire(/*empty=*/false)
                       ? ReleaseMode::kQueueToSimple
                       : ReleaseMode::kQueue;
        case QOutcome::kInvalid:
        default:
            return std::nullopt;
        }
    }

    /// The holding writer validates the queue (capturing its INVALID
    /// tail), retires the simple word, flips the hint, and releases via
    /// the queue. Mirrors release_tts_to_queue (Figure 3.29).
    void release_simple_to_queue(Node& n)
    {
        queue_.acquire_invalid_write(n.qnode);
        simple_.invalidate_from_writer();
        mode_.value.store(static_cast<std::uint32_t>(Mode::kQueue),
                          std::memory_order_release);
        ++protocol_changes_;
        policy_.on_switch();
        queue_.end_write(n.qnode);
    }

    /// The holding writer flips the hint, dismantles the queue (waking
    /// waiters with INVALID so they retry via the simple protocol), and
    /// validates + frees the simple word. Mirrors release_queue_to_tts.
    void release_queue_to_simple(Node& n)
    {
        mode_.value.store(static_cast<std::uint32_t>(Mode::kSimple),
                          std::memory_order_release);
        ++protocol_changes_;
        policy_.on_switch();
        queue_.invalidate(&n.qnode);
        simple_.validate_free();
    }

    // The mode hint lives on its own (mostly-read) cache line, separate
    // from the frequently written protocol words (Section 3.2.6).
    CacheAligned<typename P::template Atomic<std::uint32_t>> mode_;
    SimpleRwLock<P> simple_;
    QueueRwLock<P> queue_;

    ReactiveRwLockParams params_;
    Policy policy_;                       // mutated in-consensus only
    std::uint64_t protocol_changes_ = 0;  // mutated in-consensus only
};

}  // namespace reactive
