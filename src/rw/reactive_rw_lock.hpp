/**
 * @file
 * The reactive reader-writer lock: dynamically selects between the
 * centralized counter protocol (simple_rw_lock.hpp, best at low
 * contention — one fetch&add per read acquisition) and the fair queue
 * protocol (queue_rw_lock.hpp, best at high contention — local spinning
 * and O(1) remote references per acquisition).
 *
 * This is the consensus-object construction of the reactive spin lock
 * (core/reactive_lock.hpp, thesis Sections 3.2.5-3.3.1) applied to a
 * primitive with *two* contention axes — reader parallelism and writer
 * exclusivity:
 *
 *  - **Consensus objects.** The simple protocol's word is its consensus
 *    object (a reserved INVALID bit marks it retired); the queue
 *    protocol's tail is its own (an INVALID sentinel, exactly as in the
 *    reactive mutex). The two are never simultaneously free-and-valid,
 *    so possessing a freshly-acquired valid protocol *is* possessing
 *    the lock; a process executing a retired protocol observes INVALID
 *    and retries through the dispatcher.
 *  - **Protocol changes are made only by a lock-holding writer.** A
 *    writer excludes readers and writers of both protocols, so it holds
 *    the full consensus — the rwlock analogue of "changes are made only
 *    by the lock holder". Readers never switch and never touch policy
 *    state; their acquisitions are pure protocol executions. This keeps
 *    the C-serializability argument of Section 3.2.5 intact even though
 *    read acquisitions overlap.
 *  - **The mode variable is only a hint**: it routes the dispatcher and
 *    is usually read-cached; racing it is benign by the invariant above.
 *  - **Monitoring rides on waiting** (Section 3.2.6): the writer-side
 *    signals are the mutex path's signals verbatim — failed acquisition
 *    attempts in simple mode (fed to `Policy::on_tts_acquire`) and
 *    empty-queue acquisitions in queue mode (`Policy::on_queue_acquire`)
 *    — so all three switching policies of core/policy.hpp apply
 *    unchanged.
 *
 * The release token rides inside the Node, so ReactiveRwLock satisfies
 * the plain RwLock concept and is a drop-in replacement for either
 * static protocol ("the interface to the application program remains
 * constant", Section 1.1).
 *
 * Calibrating-policy caveat: only writers feed the policy, so a
 * re-probe (cost_model.hpp) that switches into the dormant protocol
 * ends only after `probe_len` further *write* acquisitions. Reads that
 * arrive meanwhile execute the probed protocol — correct, and within a
 * constant factor of the home protocol's read cost (both serve reads
 * in O(1) remote references) — but a workload that goes read-only
 * right after a probe keeps that constant overhead until the next
 * write. Read-mostly workloads that want zero probe exposure can set
 * probe_period = 0 (estimates then refresh only when the protocols
 * genuinely alternate).
 */
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "audit/audit.hpp"
#include "core/cost_model.hpp"
#include "core/policy.hpp"
#include "core/protocol_set.hpp"
#include "platform/backoff.hpp"
#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"
#include "rw/queue_rw_lock.hpp"
#include "rw/rw_concepts.hpp"
#include "rw/simple_rw_lock.hpp"
#include "trace/instrument.hpp"
#include "waiting/reactive/wait_site.hpp"

namespace reactive {

/// Tunables for the reactive rwlock's contention monitors.
struct ReactiveRwLockParams {
    /// Failed write-acquisition attempts within one acquisition that
    /// mark it "contended" (the simple->queue signal).
    std::uint32_t write_retry_limit = 8;
    /// Backoff while spinning on the simple protocol.
    BackoffParams backoff = BackoffParams::for_contenders(64);
    /// Optimistic simple-protocol fast path before consulting the mode
    /// hint (the rwlock analogue of Section 3.7.3's optimistic
    /// test&set). Disable only for ablation experiments.
    bool optimistic_simple = true;
};

/**
 * Reactive reader-writer lock selecting between the centralized and
 * queue protocols.
 *
 * Policy decisions flow through the N-protocol selection framework
 * (core/protocol_set.hpp), with the writer-side signals mapped to the
 * two-slot set {simple, queue}: binary SwitchPolicy policies embed via
 * SelectAdapter with their historical call sequence (bit-compatible
 * decisions), and Mode values are the protocol indices.
 *
 * The second, orthogonal selection axis is *how to wait*
 * (waiting/reactive/): with Waiting = ParkWaiting the slow paths of
 * both protocols dispatch through one lock-level WaitSite on the
 * writer-published wait hint (spin / two-phase / park). The same
 * consensus discipline governs it — only the departing *writer* (full
 * exclusivity) feeds the WaitSelectPolicy and republishes the hint;
 * readers merely obey it. Every operation that stores a grant or
 * invalid bit, or frees the simple word, broadcasts on the site
 * afterwards (end_read's writer handoff, end_write's succession,
 * propagate_reader_grant via start_read, invalidation walks, simple
 * releases), so a parked waiter is always re-checked awake.
 *
 * @tparam P          Platform model.
 * @tparam Policy     switching policy (Section 3.4): a binary
 *                    SwitchPolicy or a two-protocol SelectPolicy;
 *                    shared with the reactive mutex.
 * @tparam Waiting    SpinWaiting (default; byte-identical to the
 *                    pre-subsystem lock) or ParkWaiting.
 * @tparam WaitPolicy WaitSelectPolicy choosing the waiting mode
 *                    (ParkWaiting instantiations only).
 */
template <Platform P, typename Policy = AlwaysSwitchPolicy,
          typename Waiting = SpinWaiting,
          typename WaitPolicy = CalibratedWaitPolicy>
class ReactiveRwLock {
  public:
    /// The select-interface view of the policy parameter.
    using Select = SelectFor<Policy>;
    /// The rwlock's protocol set is fixed: {simple, MCS-style queue}.
    static constexpr std::uint32_t kProtocols = 2;

    static_assert(SelectPolicy<Select>);

    /// Protocol index currently servicing requests (the hint
    /// variable), under the set's conventional names.
    enum class Mode : std::uint32_t { kSimple = 0, kQueue = 1 };

    /// Release token: protocol held plus any pending protocol change.
    /// Only writers carry the switch variants.
    enum class ReleaseMode : std::uint32_t {
        kSimple,          ///< release the simple protocol
        kQueue,           ///< release the queue protocol
        kSimpleToQueue,   ///< writer release + change simple -> queue
        kQueueToSimple,   ///< writer release + change queue -> simple
    };

    /// Per-acquisition context; the queue node and the release token.
    struct Node {
        typename QueueRwLock<P>::Node qnode;
        ReleaseMode rm{ReleaseMode::kSimple};
    };

    /// The lock-level waiting site for this Waiting tag.
    using Site = WaitSite<P, Waiting>;
    /// Whether slow-path waits may park (ParkWaiting instantiations).
    static constexpr bool kParking = Site::kParking;

    static_assert(WaitSelectPolicy<WaitPolicy>);

    ReactiveRwLock() : ReactiveRwLock(ReactiveRwLockParams{}, Policy{}) {}

    explicit ReactiveRwLock(ReactiveRwLockParams params,
                            Policy policy = Policy{})
        : queue_(/*initially_valid=*/false),
          params_(params),
          select_(std::move(policy))
    {
        // Initial state: simple valid and free, queue invalid,
        // mode = simple (the low-contention protocol, as in Figure 3.27).
        mode_->store(static_cast<std::uint32_t>(Mode::kSimple),
                     std::memory_order_relaxed);
    }

    // ---- RwLock interface --------------------------------------------

    void lock_read(Node& n)
    {
        using Attempt = typename SimpleRwLock<P>::Attempt;
        // Optimistic fast path: a valid-and-writer-free simple word
        // admits the reader regardless of the (possibly stale) hint.
        // No monitoring: readers never feed the policy.
        if (params_.optimistic_simple &&
            simple_.try_lock_read() == Attempt::kAcquired) {
            n.rm = ReleaseMode::kSimple;
            return;
        }
        Mode m = mode();
        for (;;) {
            if (m == Mode::kSimple) {
                if (try_read_simple()) {
                    n.rm = ReleaseMode::kSimple;
                    return;
                }
                m = Mode::kQueue;
            } else {
                if (start_read_queue(n) !=
                    QueueRwLock<P>::Outcome::kInvalid) {
                    n.rm = ReleaseMode::kQueue;
                    return;
                }
                m = Mode::kSimple;
            }
        }
    }

    void unlock_read(Node& n)
    {
        if (n.rm == ReleaseMode::kSimple)
            simple_.unlock_read();
        else
            queue_.end_read(n.qnode);
        // A leaving reader may free the simple word for a parked
        // writer, or (last of its group) grant the queue's next writer.
        wake_waiters();
    }

    void lock_write(Node& n)
    {
        using Attempt = typename SimpleRwLock<P>::Attempt;
        // Optimistic compare&swap on the simple word (Section 3.7.3).
        // As in the reactive mutex, the fast path performs no
        // monitoring: an uncontended win says nothing reliable and
        // would break streaks that spinning acquirers are building.
        // Fast-path-aware policies get the traffic-free won-here
        // notification (the writer holds full exclusivity, so the
        // increment is in-consensus). Reader fast paths never touch
        // policy state — readers hold no exclusivity.
        if (params_.optimistic_simple &&
            simple_.try_lock_write() == Attempt::kAcquired) {
            if constexpr (FastPathAwareSelect<Select>)
                select_.on_tts_fast_acquire();
            if constexpr (kSocketAware)
                (void)note_writer_socket();  // still the new writer
            stamp_hold();
            REACTIVE_TRACE_EVENT(trace::EventType::kFastAcquire,
                                 trace::ObjectClass::kRwLock, trace_id_,
                                 kSimpleIndex, kSimpleIndex, P::now());
            n.rm = ReleaseMode::kSimple;
            return;
        }
        Mode m = mode();
        for (;;) {
            if (m == Mode::kSimple) {
                if (auto r = try_write_simple()) {
                    n.rm = *r;
                    return;
                }
                m = Mode::kQueue;
            } else {
                if (auto r = try_write_queue(n)) {
                    n.rm = *r;
                    return;
                }
                m = Mode::kSimple;
            }
        }
    }

    void unlock_write(Node& n)
    {
        // Waiting-mode selection happens first, while still holding
        // full exclusivity: fold this hold's span and the free
        // queue-depth signal into the wait policy and publish the new
        // hint, so the waiters this release signals dispatch under it.
        update_wait_policy();
        switch (n.rm) {
        case ReleaseMode::kSimple:
            simple_.unlock_write();
            break;
        case ReleaseMode::kQueue:
            queue_.end_write(n.qnode);
            break;
        case ReleaseMode::kSimpleToQueue:
            release_simple_to_queue(n);
            break;
        case ReleaseMode::kQueueToSimple:
            release_queue_to_simple(n);
            break;
        }
        // Parking wake rule: every condition-changing store above
        // (simple word free, queue grant, mode flip, invalidation walk)
        // is followed here, in the same thread, by a site broadcast.
        wake_waiters();
    }

    // ---- std-facade hooks (one-shot tries; see reactive_shared_mutex)

    /// Single non-blocking write attempt: the optimistic simple-word
    /// CAS, then — if the hint says queue mode — a tail CAS that wins
    /// only an empty valid queue (so try_lock keeps making progress
    /// while the lock lives in the queue protocol; std::lock over
    /// several reactive locks depends on that). Neither path performs
    /// monitoring, as for the optimistic fast path. Failure may be
    /// spurious.
    bool try_lock_write(Node& n)
    {
        if (simple_.try_lock_write() ==
            SimpleRwLock<P>::Attempt::kAcquired) {
            if constexpr (FastPathAwareSelect<Select>)
                select_.on_tts_fast_acquire();
            stamp_hold();
            n.rm = ReleaseMode::kSimple;
            return true;
        }
        if (mode() == Mode::kQueue &&
            queue_.try_start_write(n.qnode) != QueueRwLock<P>::Outcome::kInvalid) {
            stamp_hold();
            n.rm = ReleaseMode::kQueue;
            return true;
        }
        return false;
    }

    /// Single non-blocking read attempt (simple word, then the queue's
    /// empty-tail path in queue mode; readers never monitor). Failure
    /// may be spurious.
    bool try_lock_read(Node& n)
    {
        if (simple_.try_lock_read() == SimpleRwLock<P>::Attempt::kAcquired) {
            n.rm = ReleaseMode::kSimple;
            return true;
        }
        if (mode() == Mode::kQueue &&
            queue_.try_start_read(n.qnode) != QueueRwLock<P>::Outcome::kInvalid) {
            // The empty-tail win may have propagated a grant to a
            // parked successor reader.
            wake_waiters();
            n.rm = ReleaseMode::kQueue;
            return true;
        }
        return false;
    }

    // ---- monitoring (tests, experiments) -----------------------------

    /// Current protocol-index hint.
    std::uint32_t protocol_index() const
    {
        return mode_.value.load(std::memory_order_relaxed);
    }

    /// protocol_index() under the set's conventional names.
    Mode mode() const { return static_cast<Mode>(protocol_index()); }

    /// Number of completed protocol changes.
    std::uint64_t protocol_changes() const { return protocol_changes_; }

    /// Policy state access (in-consensus callers only). Returns the
    /// policy as passed in (binary policies are unwrapped from their
    /// adapter).
    Policy& policy()
    {
        if constexpr (SelectPolicy<Policy>)
            return select_;
        else
            return select_.underlying();
    }

    /// Wait-policy state access (in-consensus callers only).
    WaitPolicy& wait_policy()
        requires kParking
    {
        return wstate_.policy;
    }

    /// The packed wait hint currently published to waiters (tests).
    std::uint32_t wait_hint() const { return wsite_.hint(); }

  private:
    using Attempt = typename SimpleRwLock<P>::Attempt;
    using QOutcome = typename QueueRwLock<P>::Outcome;
    static constexpr std::uint32_t kSimpleIndex =
        static_cast<std::uint32_t>(Mode::kSimple);
    static constexpr std::uint32_t kQueueIndex =
        static_cast<std::uint32_t>(Mode::kQueue);

    /// Calibrating policies (core/cost_model.hpp) receive each
    /// slow-path *write* acquisition's measured latency and each
    /// switch's measured duration. Readers never feed the policy, so
    /// they are never timed; plain policies never are either.
    static constexpr bool kCalibrating = CalibratingSelectPolicy<Select>;

    /// Socket-aware policies also receive the socket-of-previous-
    /// *writer* bit (readers neither feed the policy nor hand off the
    /// write-side lines), splitting the write-latency classes by
    /// handoff locality (SocketHandoffTracker; writer-only, full
    /// exclusivity, no timestamp).
    static constexpr bool kSocketAware = SocketAwareSelect<Select>;

    bool note_writer_socket() { return writer_socket_.note_handoff(); }

    /// Simple-protocol read acquisition: spin with backoff while a
    /// writer is inside; false if the protocol was retired or the hint
    /// moved on (caller retries with the queue protocol). Parking
    /// instantiations dispatch through the site instead: the predicate
    /// *is* the acquisition attempt, aborting on retirement or a mode
    /// change, and the freeing writer's release broadcast re-checks us.
    /// Readers never feed the wait policy (no consensus), so the wait
    /// cost is traced but not folded into the estimators.
    bool try_read_simple()
    {
        if constexpr (kParking) {
            // The spin build's backoff paces spin-mode polling: the
            // predicate hits the contended reader count (see
            // try_acquire_tts in reactive_lock.hpp).
            ExpBackoff<P> backoff(params_.backoff);
            bool acquired = false;
            const AwaitResult wr = wsite_.await([&] {
                switch (simple_.try_lock_read()) {
                case Attempt::kAcquired:
                    acquired = true;
                    return true;
                case Attempt::kInvalid:
                    return true;
                case Attempt::kBusy:
                    break;
                }
                return mode_.value.load(std::memory_order_relaxed) !=
                       static_cast<std::uint32_t>(Mode::kSimple);
            }, [&] { backoff.pause(); });
            note_read_waited(wr);
            return acquired;
        } else {
            ExpBackoff<P> backoff(params_.backoff);
            for (;;) {
                switch (simple_.try_lock_read()) {
                case Attempt::kAcquired:
                    return true;
                case Attempt::kInvalid:
                    return false;
                case Attempt::kBusy:
                    break;
                }
                backoff.pause();
                if (mode_.value.load(std::memory_order_relaxed) !=
                    static_cast<std::uint32_t>(Mode::kSimple))
                    return false;
            }
        }
    }

    /// Queue-protocol read acquisition: plain in spin builds; in
    /// parking builds the blocked branch dispatches through the site
    /// (pure predicate — the grant is pushed into the node), and a
    /// success broadcasts because propagate_reader_grant may have
    /// granted a parked successor reader.
    QOutcome start_read_queue(Node& n)
    {
        if constexpr (kParking) {
            AwaitResult wr{};
            const QOutcome out = queue_.start_read(n.qnode, wsite_, wr);
            // Success may have propagated a grant; failure dismantled a
            // bogus chain, storing INVALID into parked waiters.
            wake_waiters();
            note_read_waited(wr);
            return out;
        } else {
            return queue_.start_read(n.qnode);
        }
    }

    /// Simple-protocol write acquisition: spin with backoff, count
    /// failed attempts, and feed the policy on success (the caller then
    /// holds full exclusivity, so policy state is safe to touch).
    /// Parking instantiations run the attempt loop as the site
    /// predicate (abortable acquiring predicate, as in the reactive
    /// mutex's TTS slow path); the winner then reports its measured
    /// wake latency — it holds full exclusivity, so the single-writer
    /// wait policy is safe to feed.
    std::optional<ReleaseMode> try_write_simple()
    {
        const std::uint64_t start = kCalibrating ? P::now() : 0;
        std::uint32_t retries = 0;
        if constexpr (kParking) {
            // Same contended-line pacing as try_read_simple.
            ExpBackoff<P> backoff(params_.backoff);
            bool acquired = false;
            bool retired = false;
            const AwaitResult wr = wsite_.await([&] {
                switch (simple_.try_lock_write()) {
                case Attempt::kAcquired:
                    acquired = true;
                    return true;
                case Attempt::kInvalid:
                    retired = true;
                    return true;
                case Attempt::kBusy:
                    ++retries;
                    break;
                }
                if (mode_.value.load(std::memory_order_relaxed) !=
                    static_cast<std::uint32_t>(Mode::kSimple)) {
                    retired = true;
                    return true;
                }
                return false;
            }, [&] { backoff.pause(); });
            (void)retired;
            if (!acquired)
                return std::nullopt;
            note_write_waited(wr);
            return write_simple_acquired(retries, start);
        } else {
            ExpBackoff<P> backoff(params_.backoff);
            for (;;) {
                switch (simple_.try_lock_write()) {
                case Attempt::kAcquired:
                    return write_simple_acquired(retries, start);
                case Attempt::kInvalid:
                    return std::nullopt;
                case Attempt::kBusy:
                    ++retries;
                    break;
                }
                backoff.pause();
                if (mode_.value.load(std::memory_order_relaxed) !=
                    static_cast<std::uint32_t>(Mode::kSimple))
                    return std::nullopt;
            }
        }
    }

    /// Bookkeeping common to every successful simple-protocol write
    /// acquisition (the caller holds full exclusivity).
    ReleaseMode write_simple_acquired(std::uint32_t retries,
                                      std::uint64_t start)
    {
        stamp_hold();
        const bool contended = retries > params_.write_retry_limit;
        const ProtocolSignal sig{kSimpleIndex, contended ? +1 : 0};
        const trace::ProbeWatch<Select> probe(select_, trace::enabled());
        [[maybe_unused]] std::uint64_t cycles = 0;
        std::uint32_t next;
        if constexpr (kCalibrating) {
            // Sample only clean classes (immediate or past the retry
            // limit); mid-spin wins measure waiting, not protocol cost
            // (see cost_model.hpp).
            if (contended || retries == 0) {
                cycles = P::now() - start;
                if constexpr (kSocketAware)
                    next = select_.next_protocol(sig, cycles,
                                                 note_writer_socket());
                else
                    next = select_.next_protocol(sig, cycles);
            } else {
                if constexpr (kSocketAware)
                    (void)note_writer_socket();
                next = select_.next_protocol(sig);
            }
        } else {
            next = select_.next_protocol(sig);
        }
        if constexpr (trace::kCompiled) {
            if (trace::enabled()) [[unlikely]] {
                const std::uint64_t ts = P::now();
                trace::emit(trace::EventType::kAcqSample,
                            trace::ObjectClass::kRwLock, trace_id_,
                            kSimpleIndex, static_cast<std::uint8_t>(next),
                            ts, cycles,
                            trace::pack_signal(sig.protocol, sig.drift));
                probe.emit_edges(select_, trace::ObjectClass::kRwLock,
                                 trace_id_, kSimpleIndex,
                                 static_cast<std::uint8_t>(next), ts);
                if constexpr (kCalibrating) {
                    if (cycles > 0) {
                        if (const auto best = audit::best_alternative(
                                select_, kProtocols)) {
                            const std::uint64_t regret = audit::record(
                                trace::ObjectClass::kRwLock, trace_id_,
                                cycles, *best);
                            trace::emit(trace::EventType::kRegret,
                                        trace::ObjectClass::kRwLock,
                                        trace_id_, kSimpleIndex,
                                        static_cast<std::uint8_t>(next),
                                        ts, cycles, *best, regret);
                        }
                    }
                }
            }
        }
        return next != kSimpleIndex ? ReleaseMode::kSimpleToQueue
                                    : ReleaseMode::kSimple;
    }

    /// Queue-protocol write acquisition; an empty queue signals low
    /// contention. nullopt when the protocol was retired.
    std::optional<ReleaseMode> try_write_queue(Node& n)
    {
        const std::uint64_t start = kCalibrating ? P::now() : 0;
        QOutcome outcome;
        if constexpr (kParking) {
            AwaitResult wr{};
            outcome = queue_.start_write(n.qnode, wsite_, wr);
            if (outcome == QOutcome::kInvalid) {
                // Enqueuing onto a retired tail dismantles the bogus
                // chain we headed, storing INVALID into parked waiters.
                wake_waiters();
                return std::nullopt;
            }
            note_write_waited(wr);
        } else {
            outcome = queue_.start_write(n.qnode);
            if (outcome == QOutcome::kInvalid)
                return std::nullopt;
        }
        stamp_hold();
        const bool empty = outcome == QOutcome::kAcquiredEmpty;
        const ProtocolSignal sig{kQueueIndex, empty ? -1 : 0};
        const trace::ProbeWatch<Select> probe(select_, trace::enabled());
        [[maybe_unused]] std::uint64_t cycles = 0;
        std::uint32_t next;
        if constexpr (kCalibrating) {
            cycles = P::now() - start;
            if constexpr (kSocketAware)
                next =
                    select_.next_protocol(sig, cycles, note_writer_socket());
            else
                next = select_.next_protocol(sig, cycles);
        } else {
            next = select_.next_protocol(sig);
        }
        if constexpr (trace::kCompiled) {
            if (trace::enabled()) [[unlikely]] {
                const std::uint64_t ts = P::now();
                trace::emit(trace::EventType::kAcqSample,
                            trace::ObjectClass::kRwLock, trace_id_,
                            kQueueIndex, static_cast<std::uint8_t>(next), ts,
                            cycles,
                            trace::pack_signal(sig.protocol, sig.drift));
                probe.emit_edges(select_, trace::ObjectClass::kRwLock,
                                 trace_id_, kQueueIndex,
                                 static_cast<std::uint8_t>(next), ts);
                if constexpr (kCalibrating) {
                    if (cycles > 0) {
                        if (const auto best = audit::best_alternative(
                                select_, kProtocols)) {
                            const std::uint64_t regret = audit::record(
                                trace::ObjectClass::kRwLock, trace_id_,
                                cycles, *best);
                            trace::emit(trace::EventType::kRegret,
                                        trace::ObjectClass::kRwLock,
                                        trace_id_, kQueueIndex,
                                        static_cast<std::uint8_t>(next),
                                        ts, cycles, *best, regret);
                        }
                    }
                }
            }
        }
        return next != kQueueIndex ? ReleaseMode::kQueueToSimple
                                   : ReleaseMode::kQueue;
    }

    /// The holding writer validates the queue (capturing its INVALID
    /// tail), retires the simple word, flips the hint, and releases via
    /// the queue. Mirrors release_tts_to_queue (Figure 3.29).
    void release_simple_to_queue(Node& n)
    {
        const std::uint64_t start = kCalibrating ? P::now() : 0;
        queue_.acquire_invalid_write(n.qnode);
        simple_.invalidate_from_writer();
        mode_.value.store(static_cast<std::uint32_t>(Mode::kQueue),
                          std::memory_order_release);
        ++protocol_changes_;
        select_.on_switch();
        [[maybe_unused]] std::uint64_t dur = 0;
        if constexpr (kCalibrating) {
            dur = P::now() - start;
            select_.on_switch_cycles(dur);
        }
        if constexpr (trace::kCompiled) {
            if (trace::enabled()) [[unlikely]]
                trace::emit(trace::EventType::kSwitch,
                            trace::ObjectClass::kRwLock, trace_id_,
                            kSimpleIndex, kQueueIndex, P::now(),
                            trace::pack_signal(kSimpleIndex, +1),
                            trace::estimator_pair(select_, kSimpleIndex,
                                                  kQueueIndex),
                            dur);
        }
        queue_.end_write(n.qnode);
    }

    /// The holding writer flips the hint, dismantles the queue (waking
    /// waiters with INVALID so they retry via the simple protocol), and
    /// validates + frees the simple word. Mirrors release_queue_to_tts.
    void release_queue_to_simple(Node& n)
    {
        const std::uint64_t start = kCalibrating ? P::now() : 0;
        mode_.value.store(static_cast<std::uint32_t>(Mode::kSimple),
                          std::memory_order_release);
        ++protocol_changes_;
        select_.on_switch();
        queue_.invalidate(&n.qnode);
        // Still in consensus until validate_free() publishes the word.
        [[maybe_unused]] std::uint64_t dur = 0;
        if constexpr (kCalibrating) {
            dur = P::now() - start;
            select_.on_switch_cycles(dur);
        }
        if constexpr (trace::kCompiled) {
            if (trace::enabled()) [[unlikely]]
                trace::emit(trace::EventType::kSwitch,
                            trace::ObjectClass::kRwLock, trace_id_,
                            kQueueIndex, kSimpleIndex, P::now(),
                            trace::pack_signal(kQueueIndex, -1),
                            trace::estimator_pair(select_, kQueueIndex,
                                                  kSimpleIndex),
                            dur);
        }
        simple_.validate_free();
    }

    // ---- waiting-mode selection (ParkWaiting instantiations only) ----

    /// Park-axis writer state; the empty stand-in keeps SpinWaiting
    /// object layout (and code) identical to the pre-subsystem lock.
    struct ParkWaitState {
        WaitPolicy policy{};
        std::uint64_t hold_start = 0;  ///< stamped at every write acquire
    };
    struct NoWaitState {};
    using WaitState = std::conditional_t<kParking, ParkWaitState, NoWaitState>;

    /// Every successful *write* acquisition stamps the hold start so
    /// the departing writer can report its span for free. Readers hold
    /// no exclusivity and never stamp.
    void stamp_hold()
    {
        if constexpr (kParking)
            wstate_.hold_start = P::now();
    }

    /// Broadcast on the lock-level site (no-op in spin builds). The
    /// trace counter mirrors the reactive mutex's kWake emission.
    void wake_waiters()
    {
        if constexpr (kParking) {
            if constexpr (trace::kCompiled) {
                if (trace::enabled()) [[unlikely]] {
                    const std::uint32_t w = wsite_.waiters();
                    if (w > 0)
                        trace::emit(trace::EventType::kWake,
                                    trace::ObjectClass::kRwLock, trace_id_,
                                    0, 0, P::now(), w);
                }
            }
            wsite_.wake_all();
        }
    }

    /// A slow-path *writer* reports how it waited. Called only once the
    /// caller holds full exclusivity, so feeding the measured wake
    /// latency to the (single-writer) wait policy is in-consensus.
    void note_write_waited(const AwaitResult& wr)
    {
        if constexpr (kParking) {
            if (!wr.blocked)
                return;
            if (wr.wake_latency != 0)
                wstate_.policy.note_wake_latency(wr.wake_latency);
            trace_park(wr);
        }
    }

    /// A slow-path *reader* reports how it waited: trace only — readers
    /// are never in consensus, so the wait policy is left untouched.
    void note_read_waited(const AwaitResult& wr)
    {
        if constexpr (kParking) {
            if (wr.blocked)
                trace_park(wr);
        }
    }

    void trace_park(const AwaitResult& wr)
    {
        if constexpr (trace::kCompiled) {
            if (trace::enabled()) [[unlikely]] {
                const auto m = static_cast<std::uint8_t>(
                    unpack_wait_hint(wsite_.hint()).mode);
                trace::emit(trace::EventType::kPark,
                            trace::ObjectClass::kRwLock, trace_id_, m, m,
                            P::now(), wr.wait_cycles, wr.wake_latency);
            }
        }
    }

    /// Departing writer (full exclusivity): fold this hold's span and
    /// the free queue-depth signal into the wait policy, publish the
    /// new hint, and mirror the signal into a wait-aware protocol
    /// policy.
    void update_wait_policy()
    {
        if constexpr (kParking) {
            WaitSignal ws;
            const std::uint64_t now = P::now();
            ws.hold_cycles =
                now > wstate_.hold_start ? now - wstate_.hold_start : 0;
            ws.queue_depth = wsite_.waiters();
            ws.now_cycles = now;
            const auto old_mode = static_cast<std::uint8_t>(
                unpack_wait_hint(wstate_.policy.hint()).mode);
            const std::uint32_t h = wstate_.policy.on_release(ws);
            const auto new_mode =
                static_cast<std::uint8_t>(unpack_wait_hint(h).mode);
            wsite_.set_hint(h);
            if constexpr (WaitAwareSelect<Select>)
                select_.on_wait_signal(ws);
            if constexpr (trace::kCompiled) {
                if (new_mode != old_mode && trace::enabled()) [[unlikely]] {
                    std::uint64_t ests = 0;
                    std::uint64_t ew = 0;
                    if constexpr (requires {
                                      wstate_.policy.hold_estimate();
                                      wstate_.policy.block_estimate();
                                      wstate_.policy.expected_wait();
                                  }) {
                        ests = (wstate_.policy.hold_estimate() << 32) |
                               (wstate_.policy.block_estimate() &
                                0xffffffffull);
                        ew = wstate_.policy.expected_wait();
                    }
                    trace::emit(trace::EventType::kWaitModeSwitch,
                                trace::ObjectClass::kRwLock, trace_id_,
                                old_mode, new_mode, P::now(), h, ests, ew);
                }
            }
        }
    }

    // The mode hint lives on its own (mostly-read) cache line, separate
    // from the frequently written protocol words (Section 3.2.6).
    CacheAligned<typename P::template Atomic<std::uint32_t>> mode_;
    SimpleRwLock<P> simple_;
    QueueRwLock<P> queue_;

    ReactiveRwLockParams params_;
    Select select_;                       // mutated in-consensus only
    std::uint64_t protocol_changes_ = 0;  // mutated in-consensus only
    // Socket of the previous writer (socket-aware policies only;
    // mutated only by writers, under full exclusivity).
    SocketHandoffTracker<P> writer_socket_;
    // Waiting-mode state: both empty (and branch-free above) for
    // SpinWaiting instantiations.
    [[no_unique_address]] Site wsite_;
    [[no_unique_address]] WaitState wstate_;
    // Trace identity (0 when tracing is compiled out). Unconditional
    // member so object layout is identical in both build modes.
    std::uint32_t trace_id_ = trace::new_object(trace::ObjectClass::kRwLock);
};

}  // namespace reactive
