/**
 * @file
 * Concepts and helpers shared by all reader-writer lock protocols.
 *
 * Mirrors locks/lock_concepts.hpp: every rwlock uses the node-passing
 * interface so queue-based protocols (which need per-acquisition queue
 * nodes) and centralized protocols (which use an empty Node) are
 * interchangeable in tests, benchmarks, and the reactive dispatcher.
 * A node is used for exactly one acquisition — readers and writers each
 * bring their own — and must stay alive until the matching unlock.
 */
#pragma once

#include <concepts>

namespace reactive {

// clang-format off
/// A reader-writer lock with per-acquisition context. Any number of
/// readers may hold the lock concurrently; a writer holds it alone.
template <typename L>
concept RwLock = requires(L l, typename L::Node n) {
    typename L::Node;
    { l.lock_read(n) } -> std::same_as<void>;
    { l.unlock_read(n) } -> std::same_as<void>;
    { l.lock_write(n) } -> std::same_as<void>;
    { l.unlock_write(n) } -> std::same_as<void>;
};
// clang-format on

/// RAII shared (reader) guard for any RwLock.
template <RwLock L>
class ScopedReadLock {
  public:
    explicit ScopedReadLock(L& lock) : lock_(lock) { lock_.lock_read(node_); }
    ~ScopedReadLock() { lock_.unlock_read(node_); }

    ScopedReadLock(const ScopedReadLock&) = delete;
    ScopedReadLock& operator=(const ScopedReadLock&) = delete;

  private:
    L& lock_;
    typename L::Node node_;
};

/// RAII exclusive (writer) guard for any RwLock.
template <RwLock L>
class ScopedWriteLock {
  public:
    explicit ScopedWriteLock(L& lock) : lock_(lock) { lock_.lock_write(node_); }
    ~ScopedWriteLock() { lock_.unlock_write(node_); }

    ScopedWriteLock(const ScopedWriteLock&) = delete;
    ScopedWriteLock& operator=(const ScopedWriteLock&) = delete;

  private:
    L& lock_;
    typename L::Node node_;
};

}  // namespace reactive
