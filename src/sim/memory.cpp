#include "sim/memory.hpp"

#include <algorithm>

namespace reactive::sim {

namespace {

/// Number of cached copies a write by @p writer must invalidate.
std::size_t invalidated_copies(const Directory& dir, std::uint32_t writer)
{
    std::size_t copies = dir.sharers.count();
    if (dir.sharers.test(writer))
        --copies;
    if (dir.owner >= 0 && static_cast<std::uint32_t>(dir.owner) != writer)
        ++copies;
    return copies;
}

/// Invalidation round: every cached copy other than the writer's is
/// invalidated *sequentially* (thesis Section 3.1.3); a directory that
/// overflowed its hardware pointers additionally pays the LimitLESS
/// software-extension trap.
std::uint64_t invalidation_cost(const Machine& m, std::size_t copies)
{
    const CostModel& c = m.costs();
    if (copies == 0)
        return 0;
    std::uint64_t cost =
        static_cast<std::uint64_t>(copies) * c.invalidate_per_sharer;
    if (!c.full_map_directory && copies > c.hw_dir_pointers)
        cost += c.dir_overflow_trap;
    return cost;
}

/// True when requester @p cpu must pull the line's data across a
/// socket boundary: the nearest valid copy — the dirty owner, else any
/// cached sharer — lives on another socket (cache-to-cache transfers
/// come from the closest copy). Lines cached nowhere fill from memory,
/// which the model keeps uniform (interleaved pages); see the
/// CostModel two-level terms. Called only on multi-socket machines.
bool fetch_crosses_sockets(const Machine& m, const Directory& dir,
                           std::uint32_t cpu)
{
    const std::uint32_t s = m.socket_of(cpu);
    if (dir.owner >= 0)
        return m.socket_of(static_cast<std::uint32_t>(dir.owner)) != s;
    if (dir.sharers.none())
        return false;
    const std::uint32_t lo = s * m.cores_per_socket();
    const std::uint32_t hi = s + 1 == m.sockets()
                                 ? m.procs()
                                 : std::min(m.procs(),
                                            lo + m.cores_per_socket());
    for (std::uint32_t p = lo; p < hi; ++p) {
        if (dir.sharers.test(p))
            return false;
    }
    return true;
}

/// Copies a write by @p writer must invalidate on *other* sockets:
/// each costs an extra interconnect hop on top of the flat sequential
/// invalidation. Called only on multi-socket machines.
std::size_t cross_invalidated_copies(const Machine& m, const Directory& dir,
                                     std::uint32_t writer)
{
    const std::uint32_t ws = m.socket_of(writer);
    std::size_t cross = 0;
    for (std::uint32_t p = 0; p < m.procs(); ++p) {
        if (p != writer && dir.sharers.test(p) && m.socket_of(p) != ws)
            ++cross;
    }
    if (dir.owner >= 0 && static_cast<std::uint32_t>(dir.owner) != writer &&
        m.socket_of(static_cast<std::uint32_t>(dir.owner)) != ws)
        ++cross;
    return cross;
}

/// Serializes a remote transaction of @p service cycles through the
/// line's home directory: the requester stalls until the directory is
/// free, occupies it for the service time, and is charged the total.
///
/// The small seeded jitter matters: occupancy quantizes transaction
/// start times, and without noise two processors polling one line can
/// phase-lock into a deterministic alternation in which one of them
/// never observes the state it waits for (real interconnects are never
/// that periodic).
void charge_through_directory(Machine& m, Directory& dir,
                              std::uint64_t service)
{
    service += random_below(4);
    const std::uint64_t arrive = m.cycles(current_cpu());
    const std::uint64_t start = std::max(arrive, dir.busy_until);
    dir.busy_until = start + service;
    m.charge((start - arrive) + service);
}

/// Resets cache/occupancy state left behind by a previous machine.
void refresh_epoch(Machine& m, Directory& dir)
{
    if (dir.machine_epoch != m.epoch()) {
        dir.machine_epoch = m.epoch();
        dir.sharers.reset();
        dir.owner = -1;
        dir.busy_until = 0;
    }
}

}  // namespace

void charge_read(Directory& dir)
{
    Machine* m = current_machine();
    if (m == nullptr)
        return;
    refresh_epoch(*m, dir);
    const CostModel& c = m->costs();
    const std::uint32_t cpu = current_cpu();
    ++m->mutable_stats().mem_ops;

    if (dir.owner == static_cast<std::int32_t>(cpu) ||
        (dir.owner < 0 && dir.sharers.test(cpu))) {
        m->charge(c.cache_hit);
        return;
    }

    std::uint64_t cost = c.remote_miss;
    ++m->mutable_stats().remote_misses;
    if (m->sockets() > 1 && fetch_crosses_sockets(*m, dir, cpu)) {
        cost += c.cross_socket_extra;
        ++m->mutable_stats().cross_socket_transfers;
    }
    if (dir.owner >= 0) {
        // Downgrade the dirty owner to a sharer.
        cost += c.writeback_extra;
        dir.sharers.set(static_cast<std::size_t>(dir.owner));
        dir.owner = -1;
    }
    dir.sharers.set(cpu);
    // A read that grows the sharer set beyond the hardware pointers
    // traps into the LimitLESS software handler (thesis Section 2.2.1).
    if (!c.full_map_directory && dir.sharers.count() > c.hw_dir_pointers) {
        cost += c.dir_overflow_trap;
        ++m->mutable_stats().dir_overflows;
    }
    charge_through_directory(*m, dir, cost);
}

void charge_write(Directory& dir)
{
    Machine* m = current_machine();
    if (m == nullptr)
        return;
    refresh_epoch(*m, dir);
    const CostModel& c = m->costs();
    const std::uint32_t cpu = current_cpu();
    ++m->mutable_stats().mem_ops;

    if (dir.owner == static_cast<std::int32_t>(cpu)) {
        m->charge(c.cache_hit);
        return;
    }

    std::uint64_t cost =
        dir.sharers.test(cpu) ? c.upgrade_hit : c.remote_miss;
    if (!dir.sharers.test(cpu))
        ++m->mutable_stats().remote_misses;
    if (m->sockets() > 1) {
        if (!dir.sharers.test(cpu) && fetch_crosses_sockets(*m, dir, cpu)) {
            cost += c.cross_socket_extra;
            ++m->mutable_stats().cross_socket_transfers;
        }
        const std::size_t cross = cross_invalidated_copies(*m, dir, cpu);
        cost += cross * c.invalidate_cross_extra;
        m->mutable_stats().cross_socket_invalidations += cross;
    }
    const std::size_t copies = invalidated_copies(dir, cpu);
    cost += invalidation_cost(*m, copies);
    m->mutable_stats().invalidations += copies;
    dir.sharers.reset();
    dir.owner = static_cast<std::int32_t>(cpu);
    charge_through_directory(*m, dir, cost);
}

void charge_rmw(Directory& dir)
{
    Machine* m = current_machine();
    if (m == nullptr)
        return;
    refresh_epoch(*m, dir);
    const CostModel& c = m->costs();
    const std::uint32_t cpu = current_cpu();
    ++m->mutable_stats().mem_ops;

    if (dir.owner == static_cast<std::int32_t>(cpu)) {
        m->charge(c.cache_hit + c.atomic_extra);
        return;
    }

    std::uint64_t cost =
        (dir.sharers.test(cpu) ? c.upgrade_hit : c.remote_miss) +
        c.atomic_extra;
    if (!dir.sharers.test(cpu))
        ++m->mutable_stats().remote_misses;
    if (m->sockets() > 1) {
        if (!dir.sharers.test(cpu) && fetch_crosses_sockets(*m, dir, cpu)) {
            cost += c.cross_socket_extra;
            ++m->mutable_stats().cross_socket_transfers;
        }
        const std::size_t cross = cross_invalidated_copies(*m, dir, cpu);
        cost += cross * c.invalidate_cross_extra;
        m->mutable_stats().cross_socket_invalidations += cross;
    }
    const std::size_t copies = invalidated_copies(dir, cpu);
    cost += invalidation_cost(*m, copies);
    m->mutable_stats().invalidations += copies;
    dir.sharers.reset();
    dir.owner = static_cast<std::int32_t>(cpu);
    charge_through_directory(*m, dir, cost);
}

}  // namespace reactive::sim
