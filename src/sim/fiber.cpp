#include "sim/fiber.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include <sys/mman.h>
#include <unistd.h>

namespace reactive::sim {

namespace {

/// Scheduler-side saved stack pointer / context for this host thread.
#if defined(__x86_64__)
thread_local void* t_sched_sp = nullptr;
#else
thread_local ucontext_t t_sched_ctx;
#endif
thread_local Fiber* t_current = nullptr;

std::size_t page_size()
{
    static const std::size_t ps =
        static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    return ps;
}

}  // namespace

#if defined(__x86_64__)

// void reactive_fiber_switch(void** save_sp, void* load_sp)
//
// Saves the callee-saved registers of the System V AMD64 ABI on the
// current stack, publishes the stack pointer through *save_sp, installs
// load_sp, restores the registers found there and returns into the
// destination context.
asm(R"(
    .text
    .align 16
    .globl reactive_fiber_switch
    .type  reactive_fiber_switch, @function
reactive_fiber_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq  %rsp, (%rdi)
    movq  %rsi, %rsp
    popq  %r15
    popq  %r14
    popq  %r13
    popq  %r12
    popq  %rbx
    popq  %rbp
    ret
    .size reactive_fiber_switch, . - reactive_fiber_switch

    .align 16
    .globl reactive_fiber_boot
    .type  reactive_fiber_boot, @function
reactive_fiber_boot:
    movq  %r12, %rdi
    call  reactive_fiber_entry
    ud2
    .size reactive_fiber_boot, . - reactive_fiber_boot
)");

extern "C" {
void reactive_fiber_switch(void** save_sp, void* load_sp);
void reactive_fiber_boot();  // never called directly; entered via ret

/// First frame of every fiber; never returns.
void reactive_fiber_entry(Fiber* self)
{
    fiber_entry_trampoline(self);
    __builtin_unreachable();
}
}

#endif  // __x86_64__

void fiber_entry_trampoline(Fiber* self)
{
    self->fn_();
    self->done_ = true;
    // Hand control back to the scheduler forever; a done fiber must
    // never be resumed again.
    for (;;)
        Fiber::yield_current();
}

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes) : fn_(std::move(fn))
{
    const std::size_t ps = page_size();
    const std::size_t usable = ((stack_bytes + ps - 1) / ps) * ps;
    map_bytes_ = usable + ps;  // one guard page below the stack
    stack_base_ = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    if (stack_base_ == MAP_FAILED) {
        std::perror("reactive::sim::Fiber mmap");
        std::abort();
    }
    if (mprotect(stack_base_, ps, PROT_NONE) != 0) {
        std::perror("reactive::sim::Fiber mprotect");
        std::abort();
    }

#if defined(__x86_64__)
    // Craft the initial frame that reactive_fiber_switch will "restore":
    // six callee-saved registers followed by the return address
    // (reactive_fiber_boot). boot finds `this` in %r12. The layout keeps
    // the stack 16-byte aligned at boot's `call`, as the ABI requires.
    auto top = reinterpret_cast<std::uintptr_t>(stack_base_) + map_bytes_;
    top &= ~std::uintptr_t{15};
    auto* frame = reinterpret_cast<void**>(top) - 7;
    frame[0] = nullptr;                                  // r15
    frame[1] = nullptr;                                  // r14
    frame[2] = nullptr;                                  // r13
    frame[3] = this;                                     // r12 -> boot arg
    frame[4] = nullptr;                                  // rbx
    frame[5] = nullptr;                                  // rbp
    frame[6] = reinterpret_cast<void*>(&reactive_fiber_boot);  // ret target
    sp_ = frame;
#endif
}

Fiber::~Fiber()
{
    if (stack_base_ != nullptr)
        munmap(stack_base_, map_bytes_);
}

Fiber* Fiber::current()
{
    return t_current;
}

#if defined(__x86_64__)

void Fiber::resume()
{
    assert(!done_ && "resuming a finished fiber");
    assert(t_current == nullptr && "nested fiber resume");
    t_current = this;
    reactive_fiber_switch(&t_sched_sp, sp_);
    t_current = nullptr;
}

void Fiber::yield_current()
{
    Fiber* self = t_current;
    assert(self != nullptr && "yield outside any fiber");
    reactive_fiber_switch(&self->sp_, t_sched_sp);
}

#else  // ucontext fallback

namespace {
void ucontext_entry(unsigned hi, unsigned lo)
{
    auto ptr = (static_cast<std::uintptr_t>(hi) << 32) |
               static_cast<std::uintptr_t>(lo);
    fiber_entry_trampoline(reinterpret_cast<Fiber*>(ptr));
}
}  // namespace

void Fiber::resume()
{
    assert(!done_ && "resuming a finished fiber");
    assert(t_current == nullptr && "nested fiber resume");
    t_current = this;
    if (!started_) {
        started_ = true;
        getcontext(&ctx_);
        ctx_.uc_stack.ss_sp =
            static_cast<char*>(stack_base_) + page_size();
        ctx_.uc_stack.ss_size = map_bytes_ - page_size();
        ctx_.uc_link = nullptr;
        auto ptr = reinterpret_cast<std::uintptr_t>(this);
        makecontext(&ctx_, reinterpret_cast<void (*)()>(&ucontext_entry), 2,
                    static_cast<unsigned>(ptr >> 32),
                    static_cast<unsigned>(ptr & 0xffffffffu));
    }
    swapcontext(&t_sched_ctx, &ctx_);
    t_current = nullptr;
}

void Fiber::yield_current()
{
    Fiber* self = t_current;
    assert(self != nullptr && "yield outside any fiber");
    swapcontext(&self->ctx_, &t_sched_ctx);
}

#endif

}  // namespace reactive::sim
