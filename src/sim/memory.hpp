/**
 * @file
 * Simulated shared memory with a directory-based coherence cost model.
 *
 * Each `sim::Atomic<T>` models one (padded) cache line tracked by a
 * LimitLESS-style directory (thesis Section 2.2.1): a handful of
 * hardware pointers, software extension on overflow, and *sequential*
 * invalidations on writes — the mechanism behind every contention effect
 * Chapter 3 measures:
 *
 *  - test&set polling = repeated RMWs on a shared line = an invalidation
 *    round per poll (why TAS collapses under contention);
 *  - test-and-test-and-set waiters read-cache the lock, but each release
 *    pays one invalidation per sharer, issued sequentially, plus the
 *    directory-overflow trap beyond 5 sharers (why TTS stops scaling,
 *    and why the DirNNB full-map preset helps but does not fix it);
 *  - MCS waiters spin on their own line (cache hits), so a release costs
 *    O(1) remote operations regardless of contention.
 *
 * Operations are atomic by construction (the simulation is a
 * discrete-event execution on one host thread); the model charges
 * cycles, it does not need to re-implement atomicity.
 */
#pragma once

#include <bitset>
#include <cstdint>
#include <type_traits>

#include "sim/machine.hpp"

namespace reactive::sim {

/// Directory entry for one simulated cache line.
struct Directory {
    std::bitset<kMaxProcs> sharers;
    std::int32_t owner = -1;  ///< processor with the dirty/exclusive copy

    /// Home-node occupancy: remote transactions on a line serialize at
    /// its directory, so concurrent polls queue up and delay each other
    /// *and* the holder's release — the "overwhelming traffic" effect
    /// that makes test&set polling collapse under contention
    /// (thesis Section 3.1.1). Local cache hits bypass the directory.
    std::uint64_t busy_until = 0;

    /// Machine instance this state belongs to. Shared objects may
    /// outlive a Machine (e.g. a reactive lock carried across the
    /// phases of the time-varying contention test); caches and
    /// timestamps are meaningless in the next machine and are reset on
    /// first touch. The *value* of the atomic persists, as it should.
    std::uint64_t machine_epoch = 0;
};

/// Charges the running processor for a load of this line.
void charge_read(Directory& dir);

/// Charges the running processor for a store to this line.
void charge_write(Directory& dir);

/// Charges the running processor for an atomic RMW on this line.
void charge_rmw(Directory& dir);

/**
 * Simulated atomic variable mirroring the std::atomic interface subset
 * used by the protocols. Memory-order arguments are accepted and
 * ignored: the discrete-event execution is sequentially consistent.
 *
 * Every operation's *effect* is applied at issue time (the operation is
 * linearized when the simulated processor executes it); the charge —
 * which may suspend the fiber — models the latency the processor pays
 * afterwards. Applying effects at completion instead would interleave
 * value updates with directory-state updates inconsistently and allows
 * a locally-hitting spinner to starve a remote requester forever.
 *
 * Outside a simulation (no current machine), operations act directly
 * with no cost, which lets harness code initialize and inspect shared
 * state before and after Machine::run().
 */
template <typename T>
class Atomic {
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    Atomic() noexcept : value_{} {}
    Atomic(T v) noexcept : value_(v) {}  // NOLINT(google-explicit-constructor)

    Atomic(const Atomic&) = delete;
    Atomic& operator=(const Atomic&) = delete;

    T load(std::memory_order = std::memory_order_seq_cst) const noexcept
    {
        const T v = value_;
        charge_read(dir_);
        return v;
    }

    void store(T v, std::memory_order = std::memory_order_seq_cst) noexcept
    {
        value_ = v;
        charge_write(dir_);
    }

    T exchange(T v, std::memory_order = std::memory_order_seq_cst) noexcept
    {
        const T old = value_;
        value_ = v;
        charge_rmw(dir_);
        return old;
    }

    bool compare_exchange_strong(
        T& expected, T desired,
        std::memory_order = std::memory_order_seq_cst,
        std::memory_order = std::memory_order_seq_cst) noexcept
    {
        bool ok = false;
        if (value_ == expected) {
            value_ = desired;
            ok = true;
        } else {
            expected = value_;
        }
        charge_rmw(dir_);
        return ok;
    }

    bool compare_exchange_weak(
        T& expected, T desired,
        std::memory_order success = std::memory_order_seq_cst,
        std::memory_order failure = std::memory_order_seq_cst) noexcept
    {
        return compare_exchange_strong(expected, desired, success, failure);
    }

    template <typename U = T>
        requires std::is_integral_v<U>
    T fetch_add(T v, std::memory_order = std::memory_order_seq_cst) noexcept
    {
        const T old = value_;
        value_ = static_cast<T>(value_ + v);
        charge_rmw(dir_);
        return old;
    }

    template <typename U = T>
        requires std::is_integral_v<U>
    T fetch_sub(T v, std::memory_order = std::memory_order_seq_cst) noexcept
    {
        const T old = value_;
        value_ = static_cast<T>(value_ - v);
        charge_rmw(dir_);
        return old;
    }

    template <typename U = T>
        requires std::is_integral_v<U>
    T fetch_or(T v, std::memory_order = std::memory_order_seq_cst) noexcept
    {
        const T old = value_;
        value_ = static_cast<T>(value_ | v);
        charge_rmw(dir_);
        return old;
    }

    /// Debug-only peek with no coherence charge (tracing).
    T debug_peek() const noexcept { return value_; }

  private:
    mutable Directory dir_;
    T value_;
};

}  // namespace reactive::sim
