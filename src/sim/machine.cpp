#include "sim/machine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cassert>
#include <stdexcept>

namespace reactive::sim {

namespace {
thread_local Machine* t_machine = nullptr;
}

Machine* current_machine()
{
    return t_machine;
}

std::uint32_t current_cpu()
{
    assert(t_machine != nullptr);
    return t_machine->cur_proc_;
}

void pause()
{
    Machine* m = t_machine;
    assert(m != nullptr);
    // Seeded jitter: real machines never spin in perfect lockstep, but a
    // discrete-cost simulation does, and two processors polling the same
    // word with identical periods can starve each other forever.
    m->charge(m->costs().pause_cycles + random_below(3));
}

void delay(std::uint64_t cycles)
{
    Machine* m = t_machine;
    assert(m != nullptr);
    m->charge(cycles);
}

std::uint64_t now()
{
    Machine* m = t_machine;
    assert(m != nullptr);
    return m->cycles(current_cpu());
}

std::uint32_t random_below(std::uint32_t bound)
{
    Machine* m = t_machine;
    assert(m != nullptr);
    if (SimThread* t = m->running_thread())
        return t->rng_.below(bound);
    return m->machine_rng_.below(bound);
}

namespace {
std::atomic<std::uint64_t> g_machine_epoch{1};
}  // namespace

Machine::Machine(std::uint32_t nprocs, CostModel costs, std::uint64_t seed)
    : Machine(nprocs, Topology{}, costs, seed)
{
}

Machine::Machine(std::uint32_t nprocs, Topology topo, CostModel costs,
                 std::uint64_t seed)
    : costs_(costs), procs_(nprocs), machine_rng_(seed ^ 0xa5a5a5a5a5a5a5a5ull),
      seed_(seed)
{
    epoch_ = g_machine_epoch.fetch_add(1, std::memory_order_relaxed);
    assert(nprocs >= 1 && nprocs <= kMaxProcs);
    if (costs_.pause_cycles == 0)
        costs_.pause_cycles = 1;  // zero-cost spins would hang virtual time
    sockets_ = topo.sockets < 1 ? 1 : topo.sockets;
    if (sockets_ > nprocs)
        sockets_ = nprocs;  // an empty socket cannot hold a processor
    cores_per_socket_ = topo.cores_per_socket != 0
                            ? topo.cores_per_socket
                            : (nprocs + sockets_ - 1) / sockets_;
    pos_.resize(nprocs);
    key_.resize(nprocs, kNever);
}

Machine::~Machine() = default;

SimThread* Machine::spawn(std::uint32_t proc, std::function<void()> fn,
                          std::size_t stack_bytes)
{
    assert(proc < procs_.size());
    std::uint64_t seed_state = seed_ + threads_.size() + 1;
    auto* t = new SimThread(static_cast<std::uint32_t>(threads_.size()), proc,
                            std::move(fn), stack_bytes, splitmix64(seed_state));
    threads_.emplace_back(t);
    ++live_threads_;
    ++stats_.threads_spawned;

    std::uint64_t when = 0;
    if (in_run_ && Fiber::current() != nullptr) {
        charge(costs_.spawn_cost);
        when = procs_[cur_proc_].clock;
    }
    t->ready_at_ = when;
    t->state_ = SimThread::State::kReady;
    procs_[proc].ready.push_back(t);
    if (in_run_)
        heap_touch(proc);
    return t;
}

std::uint64_t Machine::next_event(const Proc& p) const
{
    if (!p.contexts.empty())
        return p.clock;
    std::uint64_t e = kNever;
    if (!p.ready.empty())
        e = std::max(p.clock, p.ready.front()->ready_at_);
    if (!p.msgs.empty())
        e = std::min(e, std::max(p.clock, p.msgs.top().arrival));
    return e;
}

// ---- indexed binary min-heap over processors ------------------------

void Machine::heap_build()
{
    heap_.clear();
    for (std::uint32_t i = 0; i < procs_.size(); ++i) {
        key_[i] = next_event(procs_[i]);
        pos_[i] = i;
        heap_.push_back(i);
    }
    if (heap_.size() > 1) {
        for (std::uint32_t i = static_cast<std::uint32_t>(heap_.size()) / 2;
             i-- > 0;)
            heap_sift(heap_[i]);
    }
}

void Machine::heap_sift(std::uint32_t pi)
{
    std::size_t i = pos_[pi];
    const std::uint64_t k = key_[pi];
    // sift up
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        std::uint32_t pp = heap_[parent];
        if (key_[pp] < k || (key_[pp] == k && pp < pi))
            break;
        heap_[i] = pp;
        pos_[pp] = static_cast<std::uint32_t>(i);
        i = parent;
    }
    heap_[i] = pi;
    pos_[pi] = static_cast<std::uint32_t>(i);
    // sift down
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= heap_.size())
            break;
        std::size_t right = child + 1;
        if (right < heap_.size()) {
            std::uint32_t cl = heap_[child], cr = heap_[right];
            if (key_[cr] < key_[cl] || (key_[cr] == key_[cl] && cr < cl))
                child = right;
        }
        std::uint32_t c = heap_[child];
        if (k < key_[c] || (k == key_[c] && pi < c))
            break;
        heap_[i] = c;
        pos_[c] = static_cast<std::uint32_t>(i);
        i = child;
        heap_[i] = pi;
        pos_[pi] = static_cast<std::uint32_t>(i);
    }
}

void Machine::heap_touch(std::uint32_t pi)
{
    const std::uint64_t k = next_event(procs_[pi]);
    if (k == key_[pi])
        return;
    key_[pi] = k;
    heap_sift(pi);
    if (pi != cur_proc_ && k < run_until_)
        run_until_ = k;
}

std::uint64_t Machine::heap_second_min() const
{
    std::uint64_t s = kNever;
    if (heap_.size() > 1)
        s = key_[heap_[1]];
    if (heap_.size() > 2)
        s = std::min(s, key_[heap_[2]]);
    return s;
}

// ---- scheduling ------------------------------------------------------

void Machine::run()
{
    Machine* outer = t_machine;
    t_machine = this;
    in_run_ = true;
    heap_build();

#ifdef REACTIVE_SIM_TRACE
    std::uint64_t steps = 0;
#endif
    while (live_threads_ > 0) {
        const std::uint32_t pi = heap_[0];
#ifdef REACTIVE_SIM_TRACE
        if (++steps % (1u << 22) == 0) {
            std::fprintf(stderr, "[sim] step %llu pick p%u key %llu live %llu:",
                         (unsigned long long)steps, pi,
                         (unsigned long long)key_[pi],
                         (unsigned long long)live_threads_);
            for (std::size_t i = 0; i < procs_.size(); ++i)
                std::fprintf(stderr, " c%zu=%llu(ctx%zu,r%zu,m%zu)", i,
                             (unsigned long long)procs_[i].clock,
                             procs_[i].contexts.size(), procs_[i].ready.size(),
                             procs_[i].msgs.size());
            std::fprintf(stderr, "\n");
        }
#endif
        if (key_[pi] == kNever) {
            in_run_ = false;
            t_machine = outer;
            throw std::runtime_error(
                "reactive::sim::Machine deadlock: live threads but no "
                "runnable processor (lost wakeup?)");
        }
        step(pi);
        heap_touch(pi);
    }

    in_run_ = false;
    t_machine = outer;
}

void Machine::step(std::uint32_t pi)
{
    cur_proc_ = pi;
    Proc& p = procs_[pi];

    // The running processor may advance until the next other-processor
    // event or its own next message arrival without a scheduler bounce.
    run_until_ = heap_second_min();
    if (!p.msgs.empty())
        run_until_ = std::min(run_until_, p.msgs.top().arrival);

    // Deliver due messages (atomic handlers, Section 3.6).
    if (!p.msgs.empty()) {
        if (p.contexts.empty() &&
            (p.ready.empty() ||
             p.msgs.top().arrival <
                 std::max(p.clock, p.ready.front()->ready_at_))) {
            p.clock = std::max(p.clock, p.msgs.top().arrival);
        }
        deliver_messages(p);
        if (!p.msgs.empty())
            run_until_ = std::min(run_until_, p.msgs.top().arrival);
    }

    // Fill free hardware contexts from the ready queue.
    while (p.contexts.size() < costs_.hardware_contexts && !p.ready.empty()) {
        SimThread* t = p.ready.front();
        if (p.contexts.empty()) {
            p.ready.pop_front();
            p.clock = std::max(p.clock, t->ready_at_) + costs_.thread_reload;
            t->loaded_ = true;
            p.contexts.push_back(t);
            p.cur = p.contexts.size() - 1;
        } else if (t->ready_at_ <= p.clock) {
            p.ready.pop_front();
            p.clock += costs_.thread_reload;
            t->loaded_ = true;
            p.contexts.push_back(t);
        } else {
            break;
        }
    }

    if (p.contexts.empty())
        return;  // nothing runnable yet (future message/ready time)

    // Preemptive quantum (oversubscription): when unloaded runnable
    // threads are queued behind a full set of hardware contexts, bound
    // how long the resident thread may run before the "OS" forcibly
    // deschedules it. With preempt_quantum == 0 (default) no deadline
    // exists and this whole block is inert — run_until_ and the
    // post-resume dispatch below are bit-identical to the cooperative
    // scheduler.
    p.cur %= p.contexts.size();
    std::uint64_t preempt_at = kNever;
    if (costs_.preempt_quantum != 0 && !p.ready.empty() &&
        p.contexts.size() >= costs_.hardware_contexts) {
        // The deadline belongs to the resident thread, not to this
        // step: it is set once when the thread starts running against
        // a non-empty ready queue and survives scheduler bounces, so
        // the quantum measures accumulated run time.
        if (p.quantum_owner != p.contexts[p.cur]) {
            p.quantum_owner = p.contexts[p.cur];
            p.quantum_deadline = p.clock + costs_.preempt_quantum;
        }
        preempt_at = p.quantum_deadline;
        run_until_ = std::min(run_until_, preempt_at);
    } else {
        p.quantum_owner = nullptr;
    }

    SimThread* t = p.contexts[p.cur];
    t->state_ = SimThread::State::kRunning;
    running_ = t;
    t->fiber_.resume();
    running_ = nullptr;

    if (t->fiber_.done()) {
        finish_thread(p, t);
    } else if (t->state_ == SimThread::State::kBlocked) {
        auto it = std::find(p.contexts.begin(), p.contexts.end(), t);
        assert(it != p.contexts.end());
        p.contexts.erase(it);
        t->loaded_ = false;
        if (p.cur >= p.contexts.size())
            p.cur = 0;
    } else if (t->state_ == SimThread::State::kRunning) {
        t->state_ = SimThread::State::kReady;
        if (preempt_at != kNever && p.clock >= preempt_at &&
            !p.ready.empty()) {
            // Quantum expired with runnable threads still waiting for a
            // context: pay the unload and requeue behind them. The
            // thread re-pays thread_reload when its turn comes back —
            // together the round-trip is the involuntary-switch cost an
            // oversubscribed spinner keeps paying.
            auto it = std::find(p.contexts.begin(), p.contexts.end(), t);
            assert(it != p.contexts.end());
            p.contexts.erase(it);
            t->loaded_ = false;
            if (p.cur >= p.contexts.size())
                p.cur = 0;
            p.clock += costs_.thread_unload;
            t->state_ = SimThread::State::kReady;
            t->ready_at_ = p.clock;
            p.ready.push_back(t);
            p.quantum_owner = nullptr;
            ++stats_.preemptions;
        }
    }
}

void Machine::deliver_messages(Proc& p)
{
    while (!p.msgs.empty() && p.msgs.top().arrival <= p.clock) {
        // Copy out: the handler may send to this same processor.
        auto handler = p.msgs.top().handler;
        p.msgs.pop();
        p.clock += costs_.msg_handler_overhead;
        ++stats_.handlers;
        handler();
    }
}

void Machine::finish_thread(Proc& p, SimThread* t)
{
    t->state_ = SimThread::State::kDone;
    auto it = std::find(p.contexts.begin(), p.contexts.end(), t);
    if (it != p.contexts.end())
        p.contexts.erase(it);
    t->loaded_ = false;
    if (p.cur >= p.contexts.size())
        p.cur = 0;
    assert(live_threads_ > 0);
    --live_threads_;
}

std::uint64_t Machine::elapsed() const
{
    std::uint64_t e = 0;
    for (const Proc& p : procs_)
        e = std::max(e, p.clock);
    return e;
}

// ---- runtime services ------------------------------------------------

void Machine::charge(std::uint64_t cycles)
{
    Proc& p = procs_[cur_proc_];
    p.clock += cycles;
    if (p.clock > run_until_ && Fiber::current() != nullptr)
        Fiber::yield_current();
}

void Machine::send(std::uint32_t dst, std::function<void()> handler)
{
    send_delayed(dst, 0, std::move(handler));
}

void Machine::send_delayed(std::uint32_t dst, std::uint64_t extra_delay,
                           std::function<void()> handler)
{
    assert(dst < procs_.size());
    ++stats_.messages;
    charge(costs_.msg_send_overhead);
    const std::uint64_t arrival =
        procs_[cur_proc_].clock + costs_.msg_latency + extra_delay;
    procs_[dst].msgs.push(Message{arrival, msg_seq_++, std::move(handler)});
    if (dst == cur_proc_) {
        run_until_ = std::min(run_until_, arrival);
    } else {
        heap_touch(dst);
    }
}

void Machine::context_switch()
{
    Proc& p = procs_[cur_proc_];
    if (p.contexts.size() <= 1) {
        charge(costs_.pause_cycles);
        return;
    }
    ++stats_.context_switches;
    charge(costs_.context_switch);
    p.cur = (p.cur + 1) % p.contexts.size();
    Fiber::yield_current();
}

void Machine::block_current()
{
    assert(running_ != nullptr && "block outside a simulated thread");
    running_->state_ = SimThread::State::kBlocked;
    ++stats_.blocks;
    Fiber::yield_current();
}

void Machine::make_ready(SimThread* t, std::uint64_t when)
{
    assert(t->state_ == SimThread::State::kBlocked);
    t->state_ = SimThread::State::kReady;
    t->ready_at_ = when;
    ++stats_.wakes;
    procs_[t->proc_].ready.push_back(t);
    heap_touch(t->proc_);
}

// ---- SimWaitQueue ----------------------------------------------------

// SimWaitQueue operations tolerate running outside a simulation (no
// current machine): harness code initializes and resolves constructs
// before Machine::run(), when no thread can be blocked yet.

std::uint32_t SimWaitQueue::prepare_wait()
{
    Machine* m = current_machine();
    ++advertised_;
    if (m != nullptr)
        m->charge(m->costs().wait_queue_op);
    return epoch_;
}

void SimWaitQueue::cancel_wait()
{
    Machine* m = current_machine();
    assert(advertised_ > 0 && "cancel_wait without prepare_wait");
    --advertised_;
    if (m != nullptr)
        m->charge(2);
}

void SimWaitQueue::commit_wait(std::uint32_t epoch)
{
    Machine* m = current_machine();
    assert(advertised_ > 0 && "commit_wait without prepare_wait");
    if (m == nullptr) {
        --advertised_;
        return;  // nothing can block outside a simulation
    }
    if (epoch_ != epoch) {
        --advertised_;
        m->charge(2);
        return;
    }
    SimThread* self = m->running_thread();
    assert(self != nullptr && "commit_wait outside a simulated thread");
    // Pay the unload cost (Table 4.1), then re-check: the epoch may have
    // moved while we were being charged.
    m->charge(m->costs().thread_unload);
    if (epoch_ != epoch) {
        --advertised_;
        return;
    }
    waiters_.push_back(self);
    m->block_current();
    // Retract the advertisement only now that the wait completed,
    // exactly as the native commit_wait decrements after its wake
    // loop: a releaser consulting waiters() while we slept counted us.
    --advertised_;
}

void SimWaitQueue::notify_one()
{
    Machine* m = current_machine();
    ++epoch_;
    if (m == nullptr) {
        assert(waiters_.empty());
        return;
    }
    if (waiters_.empty()) {
        m->charge(m->costs().wait_queue_op);
        return;
    }
    // Pop before charging: the charge may yield this fiber (e.g. a
    // preemption), and a concurrent notifier that drains the deque in
    // that window must not leave us reading a stale front().
    SimThread* t = waiters_.front();
    waiters_.pop_front();
    m->charge(m->costs().thread_reenable);
    std::uint64_t when = m->cycles(current_cpu());
    if (t->proc() != current_cpu())
        when += m->costs().msg_latency;
    m->make_ready(t, when);
}

void SimWaitQueue::notify_all()
{
    Machine* m = current_machine();
    ++epoch_;
    if (m == nullptr) {
        assert(waiters_.empty());
        return;
    }
    if (waiters_.empty()) {
        m->charge(m->costs().wait_queue_op);
        return;
    }
    // Wake only the waiters present at the notify instant (futex
    // semantics). The reenable charges yield the fiber, so draining
    // "until empty" would also wake threads of the *next* epoch that
    // block while we drain — and with back-to-back waits (e.g. barrier
    // episodes) those re-block faster than the drain empties, leaving
    // the notifier reenabling forever.
    // Pop before charging (as in notify_one): each reenable charge may
    // yield this fiber — a preempted notifier can interleave with the
    // next holder's broadcast on the same site — and the concurrent
    // drain must never double-wake a waiter or read a stale front().
    std::size_t present = waiters_.size();
    while (present-- > 0 && !waiters_.empty()) {
        SimThread* t = waiters_.front();
        waiters_.pop_front();
        m->charge(m->costs().thread_reenable);
        std::uint64_t when = m->cycles(current_cpu());
        if (t->proc() != current_cpu())
            when += m->costs().msg_latency;
        m->make_ready(t, when);
    }
}

}  // namespace reactive::sim
