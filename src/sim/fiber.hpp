/**
 * @file
 * Cooperative fibers: the execution contexts of simulated processors.
 *
 * The simulated multiprocessor (the NWO-substitute, see DESIGN.md) runs
 * every simulated processor/thread as a fiber on one host thread and
 * switches between them at every simulated-memory event. A simulation
 * performs millions of switches, so the x86-64 path uses a hand-rolled
 * callee-saved-register switch (~tens of cycles); other architectures
 * fall back to ucontext.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#if !defined(__x86_64__)
#include <ucontext.h>
#endif

namespace reactive::sim {

/**
 * A run-to-yield coroutine with its own guarded stack.
 *
 * Exactly one scheduler (the host thread) resumes fibers; a running
 * fiber returns control with `Fiber::yield_current()`. Fibers never
 * migrate between host threads.
 */
class Fiber {
  public:
    /// @param fn          body; the fiber is `done` after fn returns.
    /// @param stack_bytes usable stack size (rounded up to page size).
    explicit Fiber(std::function<void()> fn, std::size_t stack_bytes = 128 * 1024);
    ~Fiber();

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

    /// True once the body has returned; resuming a done fiber is an error.
    bool done() const { return done_; }

    /// Transfers control from the scheduler into the fiber.
    void resume();

    /// Transfers control from the running fiber back to the scheduler.
    static void yield_current();

    /// The fiber currently running on this host thread, or nullptr.
    static Fiber* current();

  private:
    static void entry_thunk(Fiber* self);

    std::function<void()> fn_;
    void* stack_base_ = nullptr;   ///< mmap base (includes guard page)
    std::size_t map_bytes_ = 0;
    bool done_ = false;

#if defined(__x86_64__)
    void* sp_ = nullptr;  ///< saved stack pointer when suspended
#else
    ucontext_t ctx_{};
    ucontext_t* link_ = nullptr;
    bool started_ = false;
#endif

    friend void fiber_entry_trampoline(Fiber*);
};

}  // namespace reactive::sim
