/**
 * @file
 * SimPlatform: the Platform model backed by the simulated multiprocessor.
 *
 * Instantiating a protocol template with SimPlatform and running it on a
 * `sim::Machine` reproduces the thesis' experimental environment: every
 * shared access is charged through the coherence cost model and the
 * interleaving is the machine's deterministic discrete-event schedule.
 */
#pragma once

#include <cstdint>

#include "platform/platform_concept.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace reactive::sim {

/// Platform model for code running on a sim::Machine.
struct SimPlatform {
    /// Discrete-event execution on one host thread: plain reads of
    /// holder-only protocol bookkeeping are exact here, and some
    /// protocols record extra (free) diagnostics under this flag that
    /// would be data races on a native platform.
    static constexpr bool deterministic_simulation = true;

    template <typename T>
    using Atomic = sim::Atomic<T>;

    using WaitQueue = sim::SimWaitQueue;

    static void pause() { sim::pause(); }

    static void delay(std::uint64_t cycles) { sim::delay(cycles); }

    static std::uint64_t now() { return sim::now(); }

    static std::uint32_t random_below(std::uint32_t bound)
    {
        return sim::random_below(bound);
    }

    /// Socket of the executing simulated processor (TopologyAware
    /// extension): free for the caller — reads only host-side machine
    /// state, no simulated memory op, no cycle charge. Outside a
    /// simulation both degenerate to the flat answers.
    static std::uint32_t current_socket()
    {
        Machine* m = current_machine();
        return m != nullptr ? m->socket_of(current_cpu()) : 0;
    }

    static std::uint32_t socket_count()
    {
        Machine* m = current_machine();
        return m != nullptr ? m->sockets() : 1;
    }

    /// Switch-spinning poll step (Section 4.1): rotate to the next
    /// resident hardware context (cost C = 14 cycles) or degrade to a
    /// pause when the processor has a single context.
    static void context_switch_poll()
    {
        current_machine()->context_switch();
    }
};

static_assert(reactive::Platform<SimPlatform>);

}  // namespace reactive::sim
