/**
 * @file
 * The simulated multiprocessor: the experimental platform substitute for
 * the MIT Alewife machine and its NWO simulator (thesis Chapter 2).
 *
 * A `Machine` owns P simulated processors, each with its own cycle
 * clock, a small set of hardware contexts (Sparcle-style block
 * multithreading), a ready queue of unloaded threads, and an incoming
 * message queue. Simulated code runs in fibers; every simulated-memory
 * access, message, delay, or pause charges cycles to the running
 * processor's clock, and the scheduler always advances the processor
 * with the smallest next event time, so the interleaving is a faithful
 * (and deterministic) discrete-event execution.
 *
 * Cost parameters live in `CostModel`; the defaults encode the numbers
 * the thesis reports for Alewife: ~50-cycle remote misses, sequential
 * invalidations (the reason test-and-test-and-set stops scaling,
 * Section 3.1.3), LimitLESS directory overflow beyond 5 hardware
 * pointers, ~500-cycle blocking split per Table 4.1, 4 hardware contexts
 * with a 14-cycle context switch (Section 4.1).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "platform/prng.hpp"
#include "sim/fiber.hpp"

namespace reactive::sim {

/// Upper bound on simulated processors (directory bitmask width).
inline constexpr std::uint32_t kMaxProcs = 256;

/**
 * Machine shape: processors grouped into sockets (NUMA domains).
 * Processor p lives on socket p / cores_per_socket — contiguous ranges,
 * the layout every real socketed machine exposes to a pinned thread
 * pool. The default (one socket) is the flat machine every thesis
 * experiment ran on: the two-level cost terms then never fire and the
 * cost model is bit-identical to the pre-topology simulator.
 */
struct Topology {
    std::uint32_t sockets = 1;
    /// Processors per socket; 0 derives ceil(nprocs / sockets).
    std::uint32_t cores_per_socket = 0;
};

/**
 * Every latency the simulation charges, in simulated cycles.
 * Presets reproduce the configurations the thesis evaluates.
 */
struct CostModel {
    // -- processor ---------------------------------------------------
    std::uint32_t pause_cycles = 4;       ///< one spin-poll iteration

    // -- cache / directory (LimitLESS-style) -------------------------
    std::uint32_t cache_hit = 2;          ///< local cached access
    std::uint32_t remote_miss = 40;       ///< fill from home/remote node
    std::uint32_t writeback_extra = 10;   ///< downgrading a dirty owner
    std::uint32_t upgrade_hit = 12;       ///< write hit on a shared line
    std::uint32_t invalidate_per_sharer = 7;  ///< sequential invalidations
    std::uint32_t atomic_extra = 6;       ///< RMW beyond a write
    std::uint32_t hw_dir_pointers = 5;    ///< LimitLESS hardware pointers
    std::uint32_t dir_overflow_trap = 60; ///< software directory extension
    bool full_map_directory = false;      ///< DirNNB: never overflows

    // -- two-level (NUMA) transfer terms ------------------------------
    // Charged only on machines built with Topology{sockets >= 2}; on
    // the default flat machine they never fire, so every flat number is
    // bit-identical to the pre-topology cost model. The extra applies
    // when the nearest valid copy of the line (dirty owner, else any
    // cached sharer) lives on a different socket than the requester —
    // the handoff-locality distinction RMR-style analyses draw between
    // intra- and cross-domain remote references. Plain memory fills
    // (no cached copy anywhere) stay uniform: interleaved pages.
    std::uint32_t cross_socket_extra = 50;     ///< cross-socket data fetch
    std::uint32_t invalidate_cross_extra = 5;  ///< per cross-socket sharer

    // -- interconnect messages ---------------------------------------
    std::uint32_t msg_send_overhead = 16; ///< compose + launch
    std::uint32_t msg_latency = 24;       ///< one-way network latency
    std::uint32_t msg_handler_overhead = 30;  ///< dispatch into handler

    // -- threads (Table 4.1 breakdown) --------------------------------
    std::uint32_t thread_unload = 300;    ///< save state + enqueue
    std::uint32_t thread_reenable = 100;  ///< move to ready queue (waker)
    std::uint32_t thread_reload = 65;     ///< restore registers + state
    std::uint32_t context_switch = 14;    ///< between resident contexts
    std::uint32_t hardware_contexts = 1;  ///< Sparcle N (4 when multithreaded)
    std::uint32_t spawn_cost = 50;        ///< creating a thread in-sim
    std::uint32_t wait_queue_op = 13;     ///< lock queue of blocked threads

    // -- preemptive scheduling (oversubscription) ---------------------
    // With more threads than hardware contexts a spinning resident
    // thread would otherwise never yield the processor to the unloaded
    // runnable threads behind it — exactly the pathology reactive
    // waiting exists to avoid, but the simulator must be able to
    // *run* always-spin under oversubscription to measure it. A
    // nonzero quantum deschedules the running thread (charging
    // thread_unload, then thread_reload when its turn returns) once it
    // has run preempt_quantum cycles while unloaded runnable threads
    // wait. 0 — the default — disables preemption entirely: no
    // deadline is computed and the scheduler is bit-identical to the
    // pre-quantum machine (the park-free identity argument, like the
    // flat-topology terms above).
    std::uint32_t preempt_quantum = 0;    ///< cycles; 0 = cooperative

    /// Simulated 33 MHz Alewife, LimitLESS_5 directory (the default).
    static CostModel alewife() { return CostModel{}; }

    /// Full-map directory (the DirNNB curve of Figure 3.2).
    static CostModel dirnnb()
    {
        CostModel c;
        c.full_map_directory = true;
        return c;
    }

    /// 16-node 20 MHz prototype: the asynchronous network appears
    /// faster relative to the clock (thesis Section 3.5.2).
    static CostModel prototype16()
    {
        CostModel c;
        c.remote_miss = 28;
        c.invalidate_per_sharer = 5;
        c.msg_latency = 16;
        return c;
    }

    /// Alewife with Sparcle block multithreading enabled (Chapter 4).
    static CostModel multithreaded(std::uint32_t contexts = 4)
    {
        CostModel c;
        c.hardware_contexts = contexts;
        return c;
    }

    /// Cost of blocking, B: what the thesis' waiting analysis calls the
    /// fixed cost of the signaling mechanism (~500 cycles on Alewife).
    std::uint32_t blocking_cost() const
    {
        return thread_unload + thread_reenable + thread_reload;
    }
};

/// Aggregate event counters, exposed for traffic-oriented assertions.
struct MachineStats {
    std::uint64_t mem_ops = 0;
    std::uint64_t remote_misses = 0;
    std::uint64_t cross_socket_transfers = 0;   ///< data fetched across sockets
    std::uint64_t cross_socket_invalidations = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t dir_overflows = 0;
    std::uint64_t messages = 0;
    std::uint64_t handlers = 0;
    std::uint64_t context_switches = 0;
    std::uint64_t blocks = 0;
    std::uint64_t wakes = 0;
    std::uint64_t threads_spawned = 0;
    std::uint64_t preemptions = 0;  ///< quantum-expiry deschedules
};

class Machine;

/// Machine running the current fiber/handler, or nullptr outside a sim.
Machine* current_machine();

/// Processor executing the current fiber or message handler.
std::uint32_t current_cpu();

/// Charges one poll interval to the running processor.
void pause();

/// Charges @p cycles of local computation to the running processor.
void delay(std::uint64_t cycles);

/// The running processor's cycle clock.
std::uint64_t now();

/// Per-thread deterministic uniform draw in [0, bound).
std::uint32_t random_below(std::uint32_t bound);

/**
 * Derives a well-distributed child seed from an experiment seed and a
 * stream index (splitmix64 over both words). The replay harnesses
 * (src/audit/oracle.hpp) use this so a re-run of episode e under a
 * different protocol sees exactly the episode-e randomness of the
 * original stream — the determinism contract behind the oracle.
 */
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream)
{
    std::uint64_t state = base + 0x9e3779b97f4a7c15ull * (stream + 1);
    std::uint64_t s = splitmix64(state);
    // One more round decorrelates adjacent streams of adjacent bases.
    return splitmix64(state) ^ (s << 1);
}

class SimThread;
class Machine;

/**
 * A simulated thread. Created via Machine::spawn; lifetime owned by the
 * Machine. Exposed only as an opaque handle to the wait-queue layer.
 */
class SimThread {
  public:
    enum class State { kReady, kRunning, kBlocked, kDone };

    std::uint32_t id() const { return id_; }
    std::uint32_t proc() const { return proc_; }
    State state() const { return state_; }

  private:
    friend class Machine;
    friend class SimWaitQueue;
    friend std::uint32_t random_below(std::uint32_t bound);

    SimThread(std::uint32_t id, std::uint32_t proc, std::function<void()> fn,
              std::size_t stack_bytes, std::uint64_t seed)
        : id_(id), proc_(proc), fiber_(std::move(fn), stack_bytes), rng_(seed)
    {
    }

    std::uint32_t id_;
    std::uint32_t proc_;
    Fiber fiber_;
    XorShift64Star rng_;
    State state_ = State::kReady;
    bool loaded_ = false;
    std::uint64_t ready_at_ = 0;  ///< earliest cycle it may be (re)loaded
};

/**
 * Condition queue for simulated threads: the signaling substrate of the
 * waiting algorithms (Chapter 4). Mirrors the native futex eventcount
 * interface; costs follow Table 4.1 (unload on block, reenable charged
 * to the waker, reload when rescheduled).
 */
class SimWaitQueue {
  public:
    std::uint32_t prepare_wait();
    void cancel_wait();
    void commit_wait(std::uint32_t epoch);
    void notify_one();
    void notify_all();

    /// Count of *advertised* waiters — incremented by prepare_wait,
    /// retracted by cancel_wait or when a committed wait completes.
    /// This mirrors the native eventcounts' waiters() exactly (their
    /// counter also moves at prepare, not at the futex sleep), so a
    /// releaser consulting the count sees waiters that are still
    /// between prepare_wait and commit_wait — the window in which
    /// skipping a notify (and its epoch bump) would strand them on the
    /// stale snapshot. Free host read; also the holder's queue-depth
    /// signal. In the sequential simulation the read is exact, not
    /// advisory.
    std::uint32_t waiters() const { return advertised_; }

  private:
    std::uint32_t epoch_ = 0;
    std::uint32_t advertised_ = 0;
    std::deque<SimThread*> waiters_;
};

/**
 * The simulated multiprocessor.
 *
 * Usage:
 * @code
 *   sim::Machine m(64);
 *   TtsLock<sim::SimPlatform> lock;           // shared simulated state
 *   for (uint32_t p = 0; p < 64; ++p)
 *       m.spawn(p, [&] { ... });              // one thread per processor
 *   m.run();
 *   uint64_t t = m.elapsed();                 // simulated cycles
 * @endcode
 */
class Machine {
  public:
    explicit Machine(std::uint32_t nprocs, CostModel costs = CostModel::alewife(),
                     std::uint64_t seed = 1);
    /// Socketed machine: same cost model plus the two-level transfer
    /// terms charged across socket boundaries.
    Machine(std::uint32_t nprocs, Topology topo,
            CostModel costs = CostModel::alewife(), std::uint64_t seed = 1);
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    std::uint32_t procs() const { return static_cast<std::uint32_t>(procs_.size()); }
    const CostModel& costs() const { return costs_; }
    const MachineStats& stats() const { return stats_; }

    // ---- topology ---------------------------------------------------

    std::uint32_t sockets() const { return sockets_; }
    std::uint32_t cores_per_socket() const { return cores_per_socket_; }

    /// Socket of processor @p cpu (contiguous ranges, clamped so a
    /// ragged last socket absorbs any remainder).
    std::uint32_t socket_of(std::uint32_t cpu) const
    {
        const std::uint32_t s = cpu / cores_per_socket_;
        return s < sockets_ ? s : sockets_ - 1;
    }

    /// Unique id of this machine instance; used by the memory model to
    /// invalidate cache/occupancy state carried by objects that outlive
    /// a previous Machine.
    std::uint64_t epoch() const { return epoch_; }

    /**
     * Creates a simulated thread bound to processor @p proc.
     * May be called before run() (thread ready at cycle 0) or from
     * inside the simulation (charges spawn cost to the caller).
     */
    SimThread* spawn(std::uint32_t proc, std::function<void()> fn,
                     std::size_t stack_bytes = 128 * 1024);

    /**
     * Runs the simulation until every thread finishes.
     * @throws std::runtime_error on deadlock (live threads, no events).
     */
    void run();

    /// Simulated end-to-end time: max processor clock reached.
    std::uint64_t elapsed() const;

    /// Cycle clock of processor @p proc.
    std::uint64_t cycles(std::uint32_t proc) const { return procs_[proc].clock; }

    // ---- runtime services (called from simulated code) --------------

    /// Adds @p cycles to the running processor; may switch fibers.
    void charge(std::uint64_t cycles);

    /// Sends an atomic-handler message to processor @p dst.
    void send(std::uint32_t dst, std::function<void()> handler);

    /// Like send(), with @p extra_delay additional cycles of latency
    /// (used to model protocol timers such as combining windows).
    void send_delayed(std::uint32_t dst, std::uint64_t extra_delay,
                      std::function<void()> handler);

    /// Rotates to the next resident hardware context (switch-spinning).
    /// With a single context this degenerates to pause().
    void context_switch();

    /// Blocks the current thread (Table 4.1 unload cost already charged
    /// by the caller). Returns when the thread is rescheduled.
    void block_current();

    /// Makes @p t runnable on its processor no earlier than @p when.
    void make_ready(SimThread* t, std::uint64_t when);

    /// Currently running simulated thread (nullptr inside handlers).
    SimThread* running_thread() const { return running_; }

    MachineStats& mutable_stats() { return stats_; }

  private:
    struct Message {
        std::uint64_t arrival;
        std::uint64_t seq;  ///< FIFO tiebreak
        std::function<void()> handler;
        bool operator>(const Message& o) const
        {
            return arrival != o.arrival ? arrival > o.arrival : seq > o.seq;
        }
    };

    struct Proc {
        std::uint64_t clock = 0;
        std::vector<SimThread*> contexts;  ///< resident (runnable) threads
        std::size_t cur = 0;
        std::deque<SimThread*> ready;      ///< unloaded runnable threads
        std::priority_queue<Message, std::vector<Message>, std::greater<>> msgs;
        /// Preemption bookkeeping (preempt_quantum != 0 only): the
        /// resident thread whose quantum is running and its absolute
        /// expiry. Persisted across scheduler bounces — a step() that
        /// resumes the same thread must not restart the clock, or a
        /// spinner bounced by other-processor events more often than
        /// the quantum is never preempted at all.
        SimThread* quantum_owner = nullptr;
        std::uint64_t quantum_deadline = 0;
    };

    static constexpr std::uint64_t kNever = ~std::uint64_t{0};

    /// Earliest cycle at which processor @p p can do useful work.
    std::uint64_t next_event(const Proc& p) const;

    /// Runs one scheduling step on processor @p pi.
    void step(std::uint32_t pi);

    void deliver_messages(Proc& p);
    void finish_thread(Proc& p, SimThread* t);

    // ---- indexed min-heap of processors keyed by next_event ---------
    void heap_build();
    void heap_sift(std::uint32_t pi);
    void heap_touch(std::uint32_t pi);
    std::uint64_t heap_second_min() const;

    CostModel costs_;
    std::uint32_t sockets_ = 1;
    std::uint32_t cores_per_socket_ = kMaxProcs;
    std::vector<Proc> procs_;
    std::vector<std::unique_ptr<SimThread>> threads_;
    MachineStats stats_;
    XorShift64Star machine_rng_;
    std::uint64_t seed_;
    std::uint64_t msg_seq_ = 0;
    std::uint64_t epoch_ = 0;
    std::uint64_t live_threads_ = 0;
    std::uint64_t run_until_ = 0;   ///< current proc may run up to here
    std::uint32_t cur_proc_ = 0;
    SimThread* running_ = nullptr;
    bool in_run_ = false;

    std::vector<std::uint32_t> heap_;  ///< proc indices, min-heap by key
    std::vector<std::uint32_t> pos_;   ///< proc -> heap slot
    std::vector<std::uint64_t> key_;   ///< cached next_event per proc

    friend Machine* current_machine();
    friend std::uint32_t current_cpu();
    friend std::uint32_t random_below(std::uint32_t bound);
    friend class SimWaitQueue;
};

}  // namespace reactive::sim
