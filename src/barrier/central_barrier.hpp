/**
 * @file
 * Centralized sense-reversing barrier (the spin-only sibling of
 * waiting/sync/barrier.hpp, decomposed for the reactive dispatcher).
 *
 * Arrivals decrement one shared counter; the last arrival resets the
 * counter and flips a shared sense word that all waiters poll. The
 * protocol is optimal at low participant counts and at skewed arrivals:
 * an arrival is a single fetch&sub, and a straggler's critical path is
 * one RMW plus one store. Under bunched arrivals at high participant
 * counts both ends collapse — P decrements serialize at the counter's
 * home directory, and the release pays one sequential invalidation plus
 * one refill per waiter on the sense line — which is the regime the
 * combining-tree protocol (combining_tree_barrier.hpp) exists for.
 *
 * Reactive hooks: arrival is decomposed into arrive_only() /
 * wait_episode() / release_episode() (the uniform BarrierProtocolSlot
 * interface) so the reactive barrier can interpose its consensus step
 * between detecting the last arrival and releasing the episode. The
 * protocol also records (opt-in, so the standalone barrier pays
 * nothing) the two contention signals the reactive policy samples:
 * each episode's first arrival deposits a timestamp before its counter
 * decrement (a CAS paid only by the arrivals racing to be first; the
 * decrement's release/acquire chain then publishes it to the
 * completer), and each arrival measures its own counter-RMW latency,
 * which under bunched arrivals includes the directory queueing delay.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "barrier/barrier_concepts.hpp"
#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

/**
 * Centralized sense-reversing spin barrier.
 *
 * @tparam P Platform model.
 */
template <Platform P>
class CentralBarrier {
  public:
    /// Per-participant state; reuse the same Node across episodes.
    struct Node {
        std::uint32_t sense = 1;
        /// Sense of the episode the node is currently arriving at
        /// (recorded by arrive_only for wait/release).
        std::uint32_t episode_sense = 0;
    };

    /**
     * @param participants         fixed episode size.
     * @param track_first_arrival  stamp each episode's first arrival
     *                             for the reactive policy (adds one
     *                             store per episode).
     */
    explicit CentralBarrier(std::uint32_t participants,
                            bool track_first_arrival = false)
        : participants_(participants), track_(track_first_arrival)
    {
        count_.store(participants, std::memory_order_relaxed);
        first_stamp_.store(0, std::memory_order_relaxed);
        sense_->store(0, std::memory_order_relaxed);
    }

    /// BarrierProtocolSlot construction (core/protocol_set.hpp).
    CentralBarrier(std::uint32_t participants, BarrierSlotOptions opts)
        : CentralBarrier(participants, opts.track_signals)
    {
    }

    // ---- plain blocking interface (Barrier concept) ------------------

    void arrive(Node& n)
    {
        if (arrive_only(n).last)
            release_episode(n);
        else
            wait_episode(n);
    }

    std::uint32_t participants() const { return participants_; }

    // ---- decomposed slot interface (reactive dispatcher) -------------

    /// Signals this participant's arrival (flips the node's sense).
    /// `last` in the result means the caller holds the episode
    /// consensus and must eventually call release_episode(); everyone
    /// else calls wait_episode(). The first-arrival stamp (tracked
    /// mode) and the caller's counter-RMW latency ride in the result —
    /// under bunched arrivals the RMW latency includes the directory
    /// queueing delay, the protocol's contention observation.
    BarrierEpisode arrive_only(Node& n)
    {
        BarrierEpisode a;
        n.episode_sense = n.sense;
        n.sense ^= 1u;
        const std::uint64_t t0 = P::now();
        if (track_ && first_stamp_.load(std::memory_order_relaxed) == 0) {
            // Unstamped episode: try to be its first arrival (|1 keeps
            // a cycle-0 stamp distinguishable from "unstamped"). The
            // CAS is sequenced *before* our fetch_sub, so the counter's
            // release/acquire RMW chain publishes the stamp to the
            // completer — depositing after the decrement would leave
            // the completer free to read a stale stamp on weakly
            // ordered hardware. Only arrivals that race the very first
            // one pay the CAS; the rest see a nonzero stamp and skip.
            std::uint64_t expected = 0;
            (void)first_stamp_.compare_exchange_strong(
                expected, t0 | 1, std::memory_order_relaxed,
                std::memory_order_relaxed);
        }
        const std::uint32_t prev =
            count_.fetch_sub(1, std::memory_order_acq_rel);
        a.arrive_cycles = P::now() - t0;
        a.last = prev == 1;
        if (a.last && track_)
            a.first_arrival = first_stamp_.load(std::memory_order_relaxed);
        return a;
    }

    /// Spins until the node's episode is released.
    void wait_episode(Node& n)
    {
        while (sense_->load(std::memory_order_acquire) != n.episode_sense)
            P::pause();
    }

    /// Site-dispatched twin of wait_episode (the reactive barrier's
    /// waiting axis): the wait runs through @p site's hint-dispatched
    /// await, so it may spin, spin-then-park, or park. The predicate is
    /// pure — the completer flips the shared sense in release_episode
    /// and the composing barrier broadcasts on the site afterwards.
    template <typename Site, typename Result>
    void wait_episode(Node& n, Site& site, Result& wr)
    {
        wr = site.await([&] {
            return sense_->load(std::memory_order_acquire) ==
                   n.episode_sense;
        });
    }

    /// Completes the episode: resets the counter for the next episode
    /// and flips the shared sense, releasing all waiters. Only the last
    /// arriver may call this, after any in-consensus work.
    void release_episode(Node& n)
    {
        if (track_)
            first_stamp_.store(0, std::memory_order_relaxed);
        count_.store(participants_, std::memory_order_relaxed);
        sense_->store(n.episode_sense, std::memory_order_release);
    }

  private:
    const std::uint32_t participants_;
    const bool track_;
    // Counter and stamp share the arrivals' line; the sense word, which
    // waiters poll, lives on its own mostly-read line (Section 3.2.6).
    typename P::template Atomic<std::uint32_t> count_{0};
    typename P::template Atomic<std::uint64_t> first_stamp_{0};
    CacheAligned<typename P::template Atomic<std::uint32_t>> sense_;
};

}  // namespace reactive
