/**
 * @file
 * Combining-tree barrier: fan-in-k arrival tree with sense-reversing
 * wakeup propagated down the arrival paths (the scalable half of the
 * reactive barrier, in the lineage of Mellor-Crummey & Scott's tree
 * barrier and the thesis' combining tree, Section 3.1.2).
 *
 * Arrival: participants are assigned to leaves k at a time; each node
 * counts its arrivals down, and the last arrival at a node proceeds to
 * the parent, so exactly one process reaches the root with the episode
 * complete. Every contended line is shared by at most k processes, so
 * arrivals that would serialize at a central counter proceed in
 * parallel across subtrees.
 *
 * Wakeup: each non-last arrival waits on the sense word of the node
 * where it stopped. The process that climbed past a node is the unique
 * process responsible for flipping that node's sense; on release it
 * flips the nodes of its own climb path (highest first) and every woken
 * waiter does the same for its path, so the wakeup fans out in
 * O(log_k P) steps instead of one O(P) invalidation + refill storm on a
 * central sense line.
 *
 * Episode recycling: the last arrival at a node resets the node's
 * counter (and stamp) *before* climbing. This is safe because none of
 * the node's other arrivals can start the next episode until the
 * current one is released, which happens strictly after the climb; the
 * release/acquire cascade of sense flips then publishes the resets to
 * every participant before its next arrival.
 *
 * Reactive hooks: the root completer is the barrier's natural consensus
 * point. With `track_arrival_spread` enabled, arrivals piggyback a
 * minimum-arrival-timestamp combine up the tree (one extra CAS per node
 * visit, contended by at most k processes), so the completer learns the
 * episode's first-arrival stamp without any global hot line — the
 * signal the reactive barrier's switching policy samples.
 *
 * Topology-aware placement (`BarrierSlotOptions::sockets >= 2`):
 * participants are assigned leaf ids from their own socket's contiguous
 * range (the platform names the socket, TopologyAwarePlatform), fan-in
 * groups are carved from each socket's population so no group ever
 * straddles a socket boundary, and per-socket subtrees combine only in
 * the top levels of the tree. Every contended line below the socket
 * roots is then shared exclusively within one socket — the climb's
 * remote misses are all intra-socket transfers — and only the O(log
 * sockets) top levels pay cross-socket traffic, instead of every level
 * of a blind round-robin layout. The default (one socket) reproduces
 * the historical topology-blind tree bit-for-bit.
 */
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "barrier/barrier_concepts.hpp"
#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

/**
 * Fan-in-k combining-tree barrier.
 *
 * @tparam P Platform model.
 */
template <Platform P>
class CombiningTreeBarrier {
    struct alignas(kCacheLineSize) TreeNode {
        // Arrival state: touched by at most fan_in arrivals per episode.
        typename P::template Atomic<std::uint32_t> count{0};
        typename P::template Atomic<std::uint64_t> min_stamp{0};
        std::uint32_t init_count = 0;
        TreeNode* parent = nullptr;
        // Wakeup state on its own line: waiters poll it while the next
        // episode's arrivals already hammer the count word.
        CacheAligned<typename P::template Atomic<std::uint32_t>> sense;
    };

  public:
    /// Deepest possible tree (fan-in >= 2, 2^32 participants).
    static constexpr std::uint32_t kMaxDepth = 32;

    /**
     * Per-participant state; reuse the same Node across episodes. The
     * leaf identity is auto-assigned on first arrival, so a fixed set
     * of `participants()` Nodes (one per participant, each arriving
     * every episode) needs no manual numbering. At most
     * `participants()` distinct Nodes are supported over the barrier's
     * lifetime: replacing a retired participant's Node (thread churn,
     * successive thread teams) aborts rather than wrap into a
     * duplicate id (see the dissemination barrier's Node for why).
     */
    struct Node {
        std::uint32_t id = 0;
        bool assigned = false;
        std::uint32_t sense = 1;
        // Episode-local climb record (rebuilt by every arrival).
        std::uint32_t depth = 0;
        TreeNode* path[kMaxDepth] = {};
        TreeNode* stop = nullptr;
        // Episode signals, valid on the completer after arrive_only():
        std::uint64_t first_arrival = 0;  ///< min arrival stamp (tracked mode)
        std::uint64_t arrive_cycles = 0;  ///< this process' climb latency
    };

    /// BarrierProtocolSlot construction (core/protocol_set.hpp).
    CombiningTreeBarrier(std::uint32_t participants, BarrierSlotOptions opts)
        : CombiningTreeBarrier(participants, opts.fan_in, opts.track_signals,
                               opts.sockets, opts.cores_per_socket)
    {
    }

    /**
     * @param participants         fixed episode size.
     * @param fan_in               arrivals combined per tree node (>= 2).
     * @param track_arrival_spread combine first-arrival stamps up the
     *                             tree for the reactive policy (adds one
     *                             CAS per node visit).
     * @param sockets              topology-aware placement when >= 2
     *                             (see BarrierSlotOptions).
     * @param cores_per_socket     participants per socket (0 = balanced).
     */
    explicit CombiningTreeBarrier(std::uint32_t participants,
                                  std::uint32_t fan_in = 4,
                                  bool track_arrival_spread = false,
                                  std::uint32_t sockets = 1,
                                  std::uint32_t cores_per_socket = 0)
        : participants_(participants),
          fan_in_(fan_in < 2 ? 2 : fan_in),
          track_(track_arrival_spread),
          sockets_(sockets < 1 ? 1
                               : (sockets > participants && participants > 0
                                      ? participants
                                      : sockets)),
          leaf_of_(participants)
    {
        build_segments(cores_per_socket);
        build_tree();
        if (sockets_ > 1) {
            socket_next_ = std::make_unique<
                CacheAligned<typename P::template Atomic<std::uint32_t>>[]>(
                sockets_);
            for (std::uint32_t s = 0; s < sockets_; ++s)
                socket_next_[s]->store(0, std::memory_order_relaxed);
        }
    }

    // ---- plain blocking interface (Barrier concept) ------------------

    void arrive(Node& n)
    {
        if (arrive_only(n).last)
            release_episode(n);
        else
            wait_episode(n);
    }

    std::uint32_t participants() const { return participants_; }

    std::uint32_t fan_in() const { return fan_in_; }

    // ---- decomposed slot interface (reactive dispatcher) -------------

    /**
     * Climbs the arrival tree, recycling each fully-arrived node for
     * the next episode on the way. `last` in the result means this
     * process completed the episode at the root (it then holds the
     * episode consensus and must eventually call release_episode());
     * otherwise the caller waits via wait_episode(). The combined
     * minimum arrival stamp and the completer's climb latency ride in
     * the result (tracked mode).
     */
    BarrierEpisode arrive_only(Node& n)
    {
        if (!n.assigned) {
            // Oversubscription would wrap into a duplicate id and
            // silently corrupt the per-leaf arrival counts; assign_id
            // fails fast (same discipline as the dissemination
            // barrier).
            n.id = assign_id();
            n.assigned = true;
        }
        n.sense ^= 1u;
        n.depth = 0;
        const std::uint64_t t0 = P::now();
        std::uint64_t carry = t0;
        TreeNode* t = &nodes_[leaf_of_[n.id]];
        for (;;) {
            if (track_)
                deposit_min(t, carry);
            const std::uint32_t prev =
                t->count.fetch_sub(1, std::memory_order_acq_rel);
            if (prev != 1) {
                n.stop = t;
                return BarrierEpisode{};
            }
            // Last arrival at this node: collect the combined stamp and
            // recycle the node before climbing (see file comment).
            if (track_) {
                const std::uint64_t m =
                    t->min_stamp.load(std::memory_order_relaxed);
                carry = m < carry ? m : carry;
                t->min_stamp.store(kNoStamp, std::memory_order_relaxed);
            }
            t->count.store(t->init_count, std::memory_order_relaxed);
            assert(n.depth < kMaxDepth);
            n.path[n.depth++] = t;
            if (t->parent == nullptr) {
                n.first_arrival = carry;
                n.arrive_cycles = P::now() - t0;
                BarrierEpisode ep;
                ep.last = true;
                ep.first_arrival = n.first_arrival;
                ep.arrive_cycles = n.arrive_cycles;
                return ep;
            }
            t = t->parent;
        }
    }

    /// Spins at the stop node, then propagates the wakeup down this
    /// process' own climb path.
    void wait_episode(Node& n)
    {
        const std::uint32_t my_sense = n.sense ^ 1u;
        while (n.stop->sense->load(std::memory_order_acquire) != my_sense)
            P::pause();
        wake_path(n, my_sense);
    }

    /// Completes the episode: flips the senses along the completer's
    /// climb path (root first), cascading the wakeup down the tree.
    /// Only the root completer may call this, after any in-consensus
    /// work.
    void release_episode(Node& n) { wake_path(n, n.sense ^ 1u); }

  private:
    static constexpr std::uint64_t kNoStamp = ~std::uint64_t{0};

    /**
     * Distributes the participant ids over the sockets: contiguous
     * ranges of cores_per_socket ids per socket (balanced when 0),
     * any remainder absorbed by the last socket so every id has a
     * home. With one socket the single segment covers everything and
     * the construction below reproduces the historical flat tree
     * bit-for-bit.
     */
    void build_segments(std::uint32_t cores_per_socket)
    {
        const std::uint32_t cps =
            cores_per_socket != 0
                ? cores_per_socket
                : (participants_ + sockets_ - 1) / sockets_;
        socket_caps_.assign(sockets_, 0);
        socket_base_.assign(sockets_, 0);
        std::uint32_t assigned = 0;
        for (std::uint32_t s = 0; s < sockets_; ++s) {
            socket_base_[s] = assigned;
            socket_caps_[s] = std::min(cps, participants_ - assigned);
            assigned += socket_caps_[s];
        }
        socket_caps_[sockets_ - 1] += participants_ - assigned;
    }

    /**
     * Splits @p n children into ceil(n/k) fan-in groups. The flat path
     * uses the historical ragged split (full groups, then the
     * remainder) — bit-identical to the pre-topology construction —
     * while the socketed path uses near-equal groups: the tallest
     * group bounds a level's serialization, so a 6-core socket at
     * fan-in 4 fans in 3+3, not 4+2. This is the "per-level fan-in
     * chosen from socket geometry": group sizes are carved from each
     * socket's population, never across one.
     */
    static void split_groups(std::uint32_t n, std::uint32_t k, bool balanced,
                             std::vector<std::uint32_t>& sizes)
    {
        const std::uint32_t groups = (n + k - 1) / k;
        if (!balanced) {
            for (std::uint32_t g = 0; g < groups; ++g)
                sizes.push_back(std::min(k, n - g * k));
            return;
        }
        const std::uint32_t base = n / groups;
        const std::uint32_t rem = n % groups;
        for (std::uint32_t g = 0; g < groups; ++g)
            sizes.push_back(base + (g < rem ? 1 : 0));
    }

    /**
     * Builds the arrival tree over the socket segments: fan-in groups
     * are formed strictly within a segment until each segment has
     * combined to a single node (a segment already down to one node
     * passes through with no intermediate — its arrivals must not pay
     * levels other sockets still need), then the per-socket roots
     * combine in the unique cross-socket levels at the top. With one
     * segment this is exactly the historical level-by-level ragged
     * construction.
     */
    void build_tree()
    {
        const bool topo = sockets_ > 1;
        struct CurNode {
            std::uint32_t phys;  ///< physical node id (creation order)
            std::uint32_t seg;   ///< socket segment it still belongs to
        };
        std::vector<std::uint32_t> counts;      // per-physical init_count
        std::vector<std::int32_t> parent_idx;   // per-physical parent (-1 root)

        // Leaves: group each segment's participants.
        std::vector<CurNode> cur;
        std::vector<std::uint32_t> sizes;
        for (std::uint32_t s = 0; s < (topo ? sockets_ : 1u); ++s) {
            const std::uint32_t cap = topo ? socket_caps_[s] : participants_;
            if (cap == 0)
                continue;
            std::uint32_t id = topo ? socket_base_[s] : 0;
            sizes.clear();
            split_groups(cap, fan_in_, topo, sizes);
            for (std::uint32_t sz : sizes) {
                const auto phys = static_cast<std::uint32_t>(counts.size());
                for (std::uint32_t j = 0; j < sz; ++j)
                    leaf_of_[id++] = phys;
                counts.push_back(sz);
                parent_idx.push_back(-1);
                cur.push_back({phys, s});
            }
        }

        bool merged = !topo;
        while (cur.size() > 1) {
            if (!merged) {
                bool all_single = true;
                for (std::size_t i = 1; i < cur.size(); ++i) {
                    if (cur[i].seg == cur[i - 1].seg) {
                        all_single = false;
                        break;
                    }
                }
                if (all_single) {
                    merged = true;  // per-socket roots: combine across
                    for (CurNode& n : cur)
                        n.seg = 0;
                }
            }
            std::vector<CurNode> next;
            std::size_t i = 0;
            while (i < cur.size()) {
                std::size_t j = i;
                while (j < cur.size() && cur[j].seg == cur[i].seg)
                    ++j;
                if (j - i == 1 && !merged) {
                    next.push_back(cur[i]);  // pass-through segment root
                    i = j;
                    continue;
                }
                sizes.clear();
                split_groups(static_cast<std::uint32_t>(j - i), fan_in_,
                             topo, sizes);
                std::size_t child = i;
                for (std::uint32_t sz : sizes) {
                    const auto phys =
                        static_cast<std::uint32_t>(counts.size());
                    counts.push_back(sz);
                    parent_idx.push_back(-1);
                    for (std::uint32_t c = 0; c < sz; ++c)
                        parent_idx[cur[child++].phys] =
                            static_cast<std::int32_t>(phys);
                    next.push_back({phys, cur[i].seg});
                }
                i = j;
            }
            cur = std::move(next);
        }

        total_nodes_ = static_cast<std::uint32_t>(counts.size());
        nodes_ = std::make_unique<TreeNode[]>(total_nodes_);
        for (std::uint32_t n = 0; n < total_nodes_; ++n) {
            TreeNode& t = nodes_[n];
            t.init_count = counts[n];
            t.count.store(t.init_count, std::memory_order_relaxed);
            t.min_stamp.store(kNoStamp, std::memory_order_relaxed);
            t.sense->store(0, std::memory_order_relaxed);
            t.parent =
                parent_idx[n] >= 0 ? &nodes_[parent_idx[n]] : nullptr;
        }
    }

    /**
     * First-arrival id assignment. Flat: the historical global counter.
     * Socketed: the next id in the arriver's own socket's range, so its
     * whole climb to the socket root stays on lines shared only within
     * that socket; a socket whose range is exhausted (placement did not
     * match the declared geometry) spills deterministically to the next
     * socket with space — mis-placed, but never corrupt. Ids never
     * exceed the participant count: oversubscription aborts either way.
     */
    std::uint32_t assign_id()
    {
        if (sockets_ <= 1) {
            const std::uint32_t id =
                next_id_.fetch_add(1, std::memory_order_relaxed);
            if (id >= participants_)
                std::abort();
            return id;
        }
        std::uint32_t s = platform_socket<P>();
        if (s >= sockets_)
            s = sockets_ - 1;
        for (std::uint32_t tries = 0; tries < sockets_; ++tries) {
            const std::uint32_t t = (s + tries) % sockets_;
            if (socket_caps_[t] == 0)
                continue;
            const std::uint32_t local =
                socket_next_[t]->fetch_add(1, std::memory_order_relaxed);
            if (local < socket_caps_[t])
                return socket_base_[t] + local;
        }
        std::abort();  // oversubscribed: every socket range exhausted
    }

    /// Folds @p stamp into the node's episode minimum.
    static void deposit_min(TreeNode* t, std::uint64_t stamp)
    {
        std::uint64_t cur = t->min_stamp.load(std::memory_order_relaxed);
        while (stamp < cur &&
               !t->min_stamp.compare_exchange_weak(cur, stamp,
                                                   std::memory_order_relaxed,
                                                   std::memory_order_relaxed)) {
        }
    }

    /// Flips the senses of the nodes this process climbed past, highest
    /// first so the largest waiting subtrees wake earliest.
    void wake_path(Node& n, std::uint32_t my_sense)
    {
        for (std::uint32_t i = n.depth; i-- > 0;)
            n.path[i]->sense->store(my_sense, std::memory_order_release);
    }

    const std::uint32_t participants_;
    const std::uint32_t fan_in_;
    const bool track_;
    const std::uint32_t sockets_;
    std::vector<std::uint32_t> socket_caps_;  ///< participants per socket
    std::vector<std::uint32_t> socket_base_;  ///< first id of each socket
    std::vector<std::uint32_t> leaf_of_;      ///< participant id -> leaf node
    std::uint32_t total_nodes_ = 0;
    /// Creation order [leaves | combining levels | root]; per-socket
    /// subtrees are contiguous under topology-aware placement.
    std::unique_ptr<TreeNode[]> nodes_;
    typename P::template Atomic<std::uint32_t> next_id_{0};
    /// Per-socket id counters (socketed placement only), each on its
    /// own line: the assignment RMW stays socket-local.
    std::unique_ptr<CacheAligned<typename P::template Atomic<std::uint32_t>>[]>
        socket_next_;
};

}  // namespace reactive
