/**
 * @file
 * Combining-tree barrier: fan-in-k arrival tree with sense-reversing
 * wakeup propagated down the arrival paths (the scalable half of the
 * reactive barrier, in the lineage of Mellor-Crummey & Scott's tree
 * barrier and the thesis' combining tree, Section 3.1.2).
 *
 * Arrival: participants are assigned to leaves k at a time; each node
 * counts its arrivals down, and the last arrival at a node proceeds to
 * the parent, so exactly one process reaches the root with the episode
 * complete. Every contended line is shared by at most k processes, so
 * arrivals that would serialize at a central counter proceed in
 * parallel across subtrees.
 *
 * Wakeup: each non-last arrival waits on the sense word of the node
 * where it stopped. The process that climbed past a node is the unique
 * process responsible for flipping that node's sense; on release it
 * flips the nodes of its own climb path (highest first) and every woken
 * waiter does the same for its path, so the wakeup fans out in
 * O(log_k P) steps instead of one O(P) invalidation + refill storm on a
 * central sense line.
 *
 * Episode recycling: the last arrival at a node resets the node's
 * counter (and stamp) *before* climbing. This is safe because none of
 * the node's other arrivals can start the next episode until the
 * current one is released, which happens strictly after the climb; the
 * release/acquire cascade of sense flips then publishes the resets to
 * every participant before its next arrival.
 *
 * Reactive hooks: the root completer is the barrier's natural consensus
 * point. With `track_arrival_spread` enabled, arrivals piggyback a
 * minimum-arrival-timestamp combine up the tree (one extra CAS per node
 * visit, contended by at most k processes), so the completer learns the
 * episode's first-arrival stamp without any global hot line — the
 * signal the reactive barrier's switching policy samples.
 */
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "barrier/barrier_concepts.hpp"
#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

/**
 * Fan-in-k combining-tree barrier.
 *
 * @tparam P Platform model.
 */
template <Platform P>
class CombiningTreeBarrier {
    struct alignas(kCacheLineSize) TreeNode {
        // Arrival state: touched by at most fan_in arrivals per episode.
        typename P::template Atomic<std::uint32_t> count{0};
        typename P::template Atomic<std::uint64_t> min_stamp{0};
        std::uint32_t init_count = 0;
        TreeNode* parent = nullptr;
        // Wakeup state on its own line: waiters poll it while the next
        // episode's arrivals already hammer the count word.
        CacheAligned<typename P::template Atomic<std::uint32_t>> sense;
    };

  public:
    /// Deepest possible tree (fan-in >= 2, 2^32 participants).
    static constexpr std::uint32_t kMaxDepth = 32;

    /**
     * Per-participant state; reuse the same Node across episodes. The
     * leaf identity is auto-assigned on first arrival, so a fixed set
     * of `participants()` Nodes (one per participant, each arriving
     * every episode) needs no manual numbering. At most
     * `participants()` distinct Nodes are supported over the barrier's
     * lifetime: replacing a retired participant's Node (thread churn,
     * successive thread teams) aborts rather than wrap into a
     * duplicate id (see the dissemination barrier's Node for why).
     */
    struct Node {
        std::uint32_t id = 0;
        bool assigned = false;
        std::uint32_t sense = 1;
        // Episode-local climb record (rebuilt by every arrival).
        std::uint32_t depth = 0;
        TreeNode* path[kMaxDepth] = {};
        TreeNode* stop = nullptr;
        // Episode signals, valid on the completer after arrive_only():
        std::uint64_t first_arrival = 0;  ///< min arrival stamp (tracked mode)
        std::uint64_t arrive_cycles = 0;  ///< this process' climb latency
    };

    /// BarrierProtocolSlot construction (core/protocol_set.hpp).
    CombiningTreeBarrier(std::uint32_t participants, BarrierSlotOptions opts)
        : CombiningTreeBarrier(participants, opts.fan_in, opts.track_signals)
    {
    }

    /**
     * @param participants         fixed episode size.
     * @param fan_in               arrivals combined per tree node (>= 2).
     * @param track_arrival_spread combine first-arrival stamps up the
     *                             tree for the reactive policy (adds one
     *                             CAS per node visit).
     */
    explicit CombiningTreeBarrier(std::uint32_t participants,
                                  std::uint32_t fan_in = 4,
                                  bool track_arrival_spread = false)
        : participants_(participants),
          fan_in_(fan_in < 2 ? 2 : fan_in),
          track_(track_arrival_spread),
          nodes_(total_nodes(participants, fan_in_))
    {
        const std::vector<std::uint32_t> sizes =
            level_sizes(participants, fan_in_);
        std::uint32_t off = 0;
        for (std::size_t l = 0; l < sizes.size(); ++l) {
            const std::uint32_t below =
                l == 0 ? participants_ : sizes[l - 1];
            const std::uint32_t parent_off = off + sizes[l];
            for (std::uint32_t i = 0; i < sizes[l]; ++i) {
                TreeNode& t = nodes_[off + i];
                t.init_count =
                    std::min(fan_in_, below - i * fan_in_);
                t.count.store(t.init_count, std::memory_order_relaxed);
                t.min_stamp.store(kNoStamp, std::memory_order_relaxed);
                t.sense->store(0, std::memory_order_relaxed);
                t.parent = l + 1 < sizes.size()
                               ? &nodes_[parent_off + i / fan_in_]
                               : nullptr;
            }
            off += sizes[l];
        }
    }

    // ---- plain blocking interface (Barrier concept) ------------------

    void arrive(Node& n)
    {
        if (arrive_only(n).last)
            release_episode(n);
        else
            wait_episode(n);
    }

    std::uint32_t participants() const { return participants_; }

    std::uint32_t fan_in() const { return fan_in_; }

    // ---- decomposed slot interface (reactive dispatcher) -------------

    /**
     * Climbs the arrival tree, recycling each fully-arrived node for
     * the next episode on the way. `last` in the result means this
     * process completed the episode at the root (it then holds the
     * episode consensus and must eventually call release_episode());
     * otherwise the caller waits via wait_episode(). The combined
     * minimum arrival stamp and the completer's climb latency ride in
     * the result (tracked mode).
     */
    BarrierEpisode arrive_only(Node& n)
    {
        if (!n.assigned) {
            n.id = next_id_.fetch_add(1, std::memory_order_relaxed);
            // Oversubscription would wrap into a duplicate id and
            // silently corrupt the per-leaf arrival counts; fail fast
            // (same discipline as the dissemination barrier).
            if (n.id >= participants_)
                std::abort();
            n.assigned = true;
        }
        n.sense ^= 1u;
        n.depth = 0;
        const std::uint64_t t0 = P::now();
        std::uint64_t carry = t0;
        TreeNode* t = &nodes_[n.id / fan_in_];
        for (;;) {
            if (track_)
                deposit_min(t, carry);
            const std::uint32_t prev =
                t->count.fetch_sub(1, std::memory_order_acq_rel);
            if (prev != 1) {
                n.stop = t;
                return BarrierEpisode{};
            }
            // Last arrival at this node: collect the combined stamp and
            // recycle the node before climbing (see file comment).
            if (track_) {
                const std::uint64_t m =
                    t->min_stamp.load(std::memory_order_relaxed);
                carry = m < carry ? m : carry;
                t->min_stamp.store(kNoStamp, std::memory_order_relaxed);
            }
            t->count.store(t->init_count, std::memory_order_relaxed);
            assert(n.depth < kMaxDepth);
            n.path[n.depth++] = t;
            if (t->parent == nullptr) {
                n.first_arrival = carry;
                n.arrive_cycles = P::now() - t0;
                BarrierEpisode ep;
                ep.last = true;
                ep.first_arrival = n.first_arrival;
                ep.arrive_cycles = n.arrive_cycles;
                return ep;
            }
            t = t->parent;
        }
    }

    /// Spins at the stop node, then propagates the wakeup down this
    /// process' own climb path.
    void wait_episode(Node& n)
    {
        const std::uint32_t my_sense = n.sense ^ 1u;
        while (n.stop->sense->load(std::memory_order_acquire) != my_sense)
            P::pause();
        wake_path(n, my_sense);
    }

    /// Completes the episode: flips the senses along the completer's
    /// climb path (root first), cascading the wakeup down the tree.
    /// Only the root completer may call this, after any in-consensus
    /// work.
    void release_episode(Node& n) { wake_path(n, n.sense ^ 1u); }

  private:
    static constexpr std::uint64_t kNoStamp = ~std::uint64_t{0};

    static std::vector<std::uint32_t> level_sizes(std::uint32_t participants,
                                                  std::uint32_t fan_in)
    {
        std::vector<std::uint32_t> sizes;
        std::uint32_t sz = (participants + fan_in - 1) / fan_in;
        sizes.push_back(sz < 1 ? 1 : sz);
        while (sizes.back() > 1)
            sizes.push_back((sizes.back() + fan_in - 1) / fan_in);
        return sizes;
    }

    static std::uint32_t total_nodes(std::uint32_t participants,
                                     std::uint32_t fan_in)
    {
        std::uint32_t total = 0;
        for (std::uint32_t s : level_sizes(participants, fan_in))
            total += s;
        return total;
    }

    /// Folds @p stamp into the node's episode minimum.
    static void deposit_min(TreeNode* t, std::uint64_t stamp)
    {
        std::uint64_t cur = t->min_stamp.load(std::memory_order_relaxed);
        while (stamp < cur &&
               !t->min_stamp.compare_exchange_weak(cur, stamp,
                                                   std::memory_order_relaxed,
                                                   std::memory_order_relaxed)) {
        }
    }

    /// Flips the senses of the nodes this process climbed past, highest
    /// first so the largest waiting subtrees wake earliest.
    void wake_path(Node& n, std::uint32_t my_sense)
    {
        for (std::uint32_t i = n.depth; i-- > 0;)
            n.path[i]->sense->store(my_sense, std::memory_order_release);
    }

    const std::uint32_t participants_;
    const std::uint32_t fan_in_;
    const bool track_;
    std::vector<TreeNode> nodes_;  ///< [leaves | level 1 | ... | root]
    typename P::template Atomic<std::uint32_t> next_id_{0};
};

}  // namespace reactive
