/**
 * @file
 * Concepts shared by all barrier protocols.
 *
 * Mirrors rw/rw_concepts.hpp: every barrier uses the node-passing
 * interface so tree-based protocols (which need per-participant state
 * and a climb path) and centralized protocols (which need only a local
 * sense) are interchangeable in tests, benchmarks, and the reactive
 * dispatcher.
 *
 * Unlike a lock node, a barrier Node is *persistent*: it carries the
 * participant's sense (and, for tree protocols, its leaf identity)
 * across episodes, so each participant allocates one Node for the
 * lifetime of the barrier and passes the same Node to every arrive().
 * The participant set is fixed at construction; every participant must
 * arrive in every episode.
 */
#pragma once

#include <concepts>
#include <cstdint>

namespace reactive {

// clang-format off
/// A rendezvous barrier for a fixed participant count. arrive() returns
/// once all participants of the current episode have arrived; Nodes are
/// reused across episodes (they hold the participant's reversing sense).
template <typename B>
concept Barrier = requires(B b, typename B::Node n) {
    typename B::Node;
    { b.arrive(n) } -> std::same_as<void>;
    { b.participants() } -> std::same_as<std::uint32_t>;
};
// clang-format on

/**
 * Uniform construction options for barrier protocol-set members
 * (core/protocol_set.hpp): every slot of a barrier ProtocolSet is
 * constructed as `Slot(participants, BarrierSlotOptions)`. Protocols
 * ignore the fields that do not concern them.
 */
struct BarrierSlotOptions {
    /// Record the per-episode reactive signals (first-arrival stamps,
    /// completer arrival latency). Standalone barriers leave this off
    /// and pay nothing for the hooks.
    bool track_signals = false;
    /// Arrival fan-in of tree-shaped protocols.
    std::uint32_t fan_in = 4;
    /// Topology-aware placement (tree-shaped protocols): with
    /// sockets >= 2, participants are assigned to leaves by the socket
    /// their platform reports (TopologyAwarePlatform), per-level
    /// fan-in groups are carved from the socket geometry so no fan-in
    /// group ever straddles a socket, and sockets combine only at the
    /// top of the tree. The default keeps the historical
    /// topology-blind layout bit-for-bit.
    std::uint32_t sockets = 1;
    /// Participants per socket (0 = balanced, ceil(P / sockets)).
    std::uint32_t cores_per_socket = 0;
};

/**
 * Outcome of one decomposed arrival — the barrier family's
 * per-acquisition signal (the `ProtocolSlot` signal requirement,
 * core/protocol_set.hpp). `last` elects the episode's consensus
 * process; the stamps are only meaningful on the completer of a
 * signal-tracking slot.
 */
struct BarrierEpisode {
    bool last = false;  ///< this arrival completed the episode
    /// The protocol designates a fixed completer (dissemination) rather
    /// than electing whichever participant finishes last — completer
    /// identity then carries no arrival-order information, and skew
    /// detection falls back to the completer's own arrival latency.
    bool fixed_completer = false;
    std::uint64_t first_arrival = 0;  ///< episode's first-arrival stamp
    std::uint64_t arrive_cycles = 0;  ///< completer's own arrival latency
};

// clang-format off
/**
 * The barrier family's refinement of the core `ProtocolSlot` concept:
 * a barrier whose arrival is decomposed so a reactive dispatcher can
 * interpose the episode-consensus step between the election of the
 * completer and the release it performs. The slot's consensus object
 * is the completer election itself (counter reaching zero, root
 * completed, designated-completer round); "invalidate/revalidate" is
 * the episode hand-off — a slot is live only for episodes the mode
 * index routes to it, and the completer's release publishes any mode
 * change before the next episode can start, so an idle slot is never
 * entered and needs no INVALID sentinels.
 */
template <typename B>
concept BarrierProtocolSlot =
    Barrier<B> &&
    std::constructible_from<B, std::uint32_t, BarrierSlotOptions> &&
    requires(B b, typename B::Node n) {
        { b.arrive_only(n) } -> std::same_as<BarrierEpisode>;
        { b.wait_episode(n) } -> std::same_as<void>;
        { b.release_episode(n) } -> std::same_as<void>;
    };
// clang-format on

}  // namespace reactive
