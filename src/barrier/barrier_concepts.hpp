/**
 * @file
 * Concepts shared by all barrier protocols.
 *
 * Mirrors rw/rw_concepts.hpp: every barrier uses the node-passing
 * interface so tree-based protocols (which need per-participant state
 * and a climb path) and centralized protocols (which need only a local
 * sense) are interchangeable in tests, benchmarks, and the reactive
 * dispatcher.
 *
 * Unlike a lock node, a barrier Node is *persistent*: it carries the
 * participant's sense (and, for tree protocols, its leaf identity)
 * across episodes, so each participant allocates one Node for the
 * lifetime of the barrier and passes the same Node to every arrive().
 * The participant set is fixed at construction; every participant must
 * arrive in every episode.
 */
#pragma once

#include <concepts>
#include <cstdint>

namespace reactive {

// clang-format off
/// A rendezvous barrier for a fixed participant count. arrive() returns
/// once all participants of the current episode have arrived; Nodes are
/// reused across episodes (they hold the participant's reversing sense).
template <typename B>
concept Barrier = requires(B b, typename B::Node n) {
    typename B::Node;
    { b.arrive(n) } -> std::same_as<void>;
    { b.participants() } -> std::same_as<std::uint32_t>;
};
// clang-format on

}  // namespace reactive
