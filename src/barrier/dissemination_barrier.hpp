/**
 * @file
 * Dissemination barrier with a designated-completer round — the third
 * member of the barrier ProtocolSet (after central_barrier.hpp and
 * combining_tree_barrier.hpp), and the first protocol folded into the
 * reactive framework that does *not* naturally elect a completer.
 *
 * Arrival (Hensgen/Finkel/Manber dissemination): ceil(log2 P) rounds of
 * pairwise flags. In round r, participant i signals participant
 * (i + 2^r) mod P and waits for the signal from (i - 2^r) mod P; after
 * the last round, information from every participant has reached every
 * other, so each participant locally knows the episode is complete.
 * Every flag line is written by exactly one fixed partner and read by
 * exactly one participant (two sharers), all rounds proceed in
 * parallel across participants, and the critical path is log2 P flag
 * hand-offs with **no contended RMW anywhere** — the regime where even
 * the combining tree's fan-in-k serialization is overhead.
 *
 * Flags are monotone per-round episode counters (the signal for
 * episode e is "counter reached e"), so neighbouring episodes can
 * overlap without sense bookkeeping and a signal can never be
 * consumed by the wrong episode.
 *
 * The designated-completer round: pure dissemination releases every
 * participant the instant its own rounds complete — there is no single
 * process that finishes "last", which is exactly what the reactive
 * framework's episode-consensus argument needs (reactive_barrier.hpp).
 * This implementation therefore *designates* participant 0 as the
 * completer and appends a release round: when participant 0 completes
 * its log2 P rounds it provably knows all P participants have arrived
 * (its final wait transitively depends on every participant's round-0
 * signal), so it is a valid consensus process; every other participant,
 * after finishing its own rounds, waits for a per-participant release
 * flag that the completer propagates through a fan-out-k forwarding
 * tree over participant ids (each release line again has exactly two
 * sharers, and the wave is O(log P) deep). Between the completer's
 * rounds completing and its release wave, every other participant
 * either is still inside its arrival rounds or is parked at its release
 * flag — in both cases it cannot start the next episode, which restores
 * the quiescence window the consensus step runs in. The release round
 * costs one extra O(log P) wave per episode: that is the price of
 * giving the protocol a consensus point, and it is charged to the
 * static protocol as well (this class *is* the slot the reactive
 * barrier runs), so the reactive crossover tables compare like with
 * like.
 *
 * Reactive signal hooks mirror the central barrier: with
 * `track_signals` each episode's first arrival CASes a stamp (paid only
 * by the arrivals racing to be first; published to the completer by the
 * flag chain its rounds acquire), and the completer measures its own
 * rounds latency. The completer resets the stamp before the release
 * wave, and every next-episode deposit happens after acquiring that
 * wave, so the stamp discipline is race-free exactly as in the central
 * protocol.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "barrier/barrier_concepts.hpp"
#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

/**
 * Dissemination barrier (designated-completer variant).
 *
 * @tparam P Platform model.
 */
template <Platform P>
class DisseminationBarrier {
    struct alignas(kCacheLineSize) Line {
        typename P::template Atomic<std::uint64_t> v{0};
    };

  public:
    /// Fan-out of the completer's release-forwarding tree.
    static constexpr std::uint32_t kReleaseFanOut = 4;

    /**
     * Per-participant state; reuse the same Node across episodes. The
     * participant identity is auto-assigned on first arrival (as in the
     * combining tree); the node carries the participant's episode
     * count, which all flags are matched against.
     *
     * A barrier instance supports at most `participants()` distinct
     * Nodes over its lifetime: handing a retired participant's slot to
     * a fresh Node (thread churn, successive thread teams) is not
     * supported — a reassigned id would inherit the retiree's episode
     * position mid-stream — and arrive_only aborts rather than wrap
     * into a duplicate id.
     */
    struct Node {
        std::uint32_t id = 0;
        bool assigned = false;
        std::uint64_t episode = 0;  ///< completed-arrival count
    };

    explicit DisseminationBarrier(std::uint32_t participants,
                                  bool track_signals = false)
        : participants_(participants),
          rounds_(rounds_for(participants)),
          track_(track_signals),
          flags_(static_cast<std::size_t>(participants) * rounds_),
          release_(participants)
    {
        first_stamp_.store(0, std::memory_order_relaxed);
    }

    /// BarrierProtocolSlot construction (core/protocol_set.hpp).
    DisseminationBarrier(std::uint32_t participants, BarrierSlotOptions opts)
        : DisseminationBarrier(participants, opts.track_signals)
    {
    }

    // ---- plain blocking interface (Barrier concept) ------------------

    void arrive(Node& n)
    {
        if (arrive_only(n).last)
            release_episode(n);
        else
            wait_episode(n);
    }

    std::uint32_t participants() const { return participants_; }

    std::uint32_t rounds() const { return rounds_; }

    // ---- decomposed slot interface (reactive dispatcher) -------------

    /**
     * Runs the log2 P signalling rounds. `last` is true for the
     * designated completer (participant 0), which then holds the
     * episode consensus — all other participants are inside their
     * rounds or parked at their release flag — and must eventually
     * call release_episode(); everyone else calls wait_episode().
     */
    BarrierEpisode arrive_only(Node& n)
    {
        if (!n.assigned) {
            n.id = next_id_.fetch_add(1, std::memory_order_relaxed);
            // Oversubscription (more distinct Nodes than participants,
            // e.g. thread churn) would wrap into a duplicate id — two
            // designated completers among them — and silently corrupt
            // the flag counters. Fail fast instead.
            if (n.id >= participants_)
                std::abort();
            n.assigned = true;
        }
        const std::uint64_t e = ++n.episode;
        const std::uint64_t t0 = P::now();
        if (track_ && first_stamp_.load(std::memory_order_relaxed) == 0) {
            // As in the central barrier: only arrivals racing to be the
            // episode's first pay the CAS (|1 keeps a cycle-0 stamp
            // distinguishable from "unstamped"); the flag chain the
            // completer's rounds acquire publishes the stamp.
            std::uint64_t expected = 0;
            (void)first_stamp_.compare_exchange_strong(
                expected, t0 | 1, std::memory_order_relaxed,
                std::memory_order_relaxed);
        }
        for (std::uint32_t r = 0; r < rounds_; ++r) {
            const std::uint32_t partner =
                (n.id + (1u << r)) % participants_;
            flags_[flag_index(partner, r)].v.fetch_add(
                1, std::memory_order_acq_rel);
            auto& mine = flags_[flag_index(n.id, r)].v;
            while (mine.load(std::memory_order_acquire) < e)
                P::pause();
        }
        BarrierEpisode ep;
        ep.last = n.id == 0;
        ep.fixed_completer = true;
        if (ep.last) {
            ep.arrive_cycles = P::now() - t0;
            if (track_)
                ep.first_arrival =
                    first_stamp_.load(std::memory_order_relaxed);
        }
        return ep;
    }

    /// Waits for the completer's release wave, then forwards it to this
    /// participant's children in the release tree.
    void wait_episode(Node& n)
    {
        auto& mine = release_[n.id].v;
        while (mine.load(std::memory_order_acquire) < n.episode)
            P::pause();
        forward_release(n.id, n.episode);
    }

    /// Completes the episode: re-arms the stamp and starts the release
    /// wave. Only the designated completer may call this, after any
    /// in-consensus work.
    void release_episode(Node& n)
    {
        if (track_)
            first_stamp_.store(0, std::memory_order_relaxed);
        forward_release(n.id, n.episode);
    }

  private:
    static std::uint32_t rounds_for(std::uint32_t participants)
    {
        std::uint32_t r = 0;
        while ((std::uint64_t{1} << r) < participants)
            ++r;
        return r;
    }

    std::size_t flag_index(std::uint32_t id, std::uint32_t r) const
    {
        return static_cast<std::size_t>(id) * rounds_ + r;
    }

    /// Release stores carry release order so the chain from the
    /// completer's consensus work (mode store, stamp reset) reaches
    /// every participant before its next arrival.
    void forward_release(std::uint32_t id, std::uint64_t episode)
    {
        for (std::uint32_t c = kReleaseFanOut * id + 1;
             c <= kReleaseFanOut * id + kReleaseFanOut; ++c) {
            if (c >= participants_)
                break;
            release_[c].v.store(episode, std::memory_order_release);
        }
    }

    const std::uint32_t participants_;
    const std::uint32_t rounds_;
    const bool track_;
    /// flags_[i * rounds + r]: episode count of round-r signals to
    /// participant i; written only by i's fixed round-r partner.
    std::vector<Line> flags_;
    /// release_[i]: episodes released to participant i; written only by
    /// i's parent in the fan-out tree.
    std::vector<Line> release_;
    typename P::template Atomic<std::uint64_t> first_stamp_{0};
    typename P::template Atomic<std::uint32_t> next_id_{0};
};

}  // namespace reactive
