/**
 * @file
 * The reactive barrier: dynamically selects between the centralized
 * sense-reversing barrier (central_barrier.hpp, optimal at low
 * participant counts and skewed arrivals) and the fan-in-k combining
 * tree (combining_tree_barrier.hpp, optimal at high participant counts
 * under bunched arrivals), reusing the switching policies of
 * core/policy.hpp unmodified.
 *
 * This is the consensus-object construction of the reactive lock
 * (thesis Sections 3.2.5-3.3.1) carried to a primitive with *no
 * holder*: nobody owns a barrier the way a process owns a lock, so the
 * lock subsystems' rule "protocol changes are made only by the lock
 * holder" has no direct analogue. The barrier substitutes a different
 * consensus point with a stronger property:
 *
 *  - **The last arriver of each episode is the in-consensus process.**
 *    Both protocols elect exactly one such process per episode (the
 *    arrival that takes the central counter to zero; the climber that
 *    completes the root). Between that election and the release it
 *    performs, *every other participant is provably quiescent*: each
 *    has finished its arrival and cannot leave the episode's wait —
 *    let alone start the next episode — until the release. The
 *    completer therefore mutates policy state, the mode variable, and
 *    either protocol's idle state entirely race-free, with no INVALID
 *    sentinels, no retry dispatch, and no switch serialization beyond
 *    the episode order itself (consecutive completers are ordered by
 *    the release/acquire chain of the episodes between them).
 *  - **The mode variable is exact, not a hint.** The switch is stored
 *    before the release; every participant's next arrival happens
 *    after acquiring that release, so all participants of an episode
 *    execute the same protocol. This is *stronger* than the lock case
 *    (where racing the mode hint is benign-but-possible) and is what
 *    removes the need for the locks' invalid-protocol retry loops.
 *    It also keeps each protocol's sense bookkeeping trivially
 *    consistent: a participant's per-protocol sense flips exactly once
 *    per episode executed on that protocol, uniformly across the
 *    participant set.
 *  - **Monitoring rides on arrival** (the analogue of Section 3.2.6):
 *    the completer samples the episode's *arrival spread* — the cycle
 *    gap between the first arrival (stamped for free by the protocols:
 *    a single store in the central barrier, a min-combine up the tree)
 *    and episode completion — plus its own arrival latency, which in
 *    central mode measures queueing at the counter's home directory. A
 *    small spread means the participants arrived together and the
 *    central counter serialized them (the tree's regime); a spread of
 *    many thousands of cycles means a straggler dominated and the tree
 *    is pure overhead (the central regime).
 *
 * Policy reuse: a central-mode episode feeds `on_tts_acquire(bunched)`
 * (the centralized protocol plays the TTS role) and a tree-mode episode
 * feeds `on_queue_acquire(skewed)` (the scalable protocol plays the
 * queue role), so AlwaysSwitch, Competitive3 and Hysteresis apply
 * unmodified with an episode as the unit of observation.
 *
 * Calibration (core/cost_model.hpp): with `ReactiveBarrierParams::
 * calibrate` the bunched/contended classification thresholds are
 * re-derived each episode from the completer's measured counter-RMW
 * latency (a decaying minimum tracking the uncontended cost) instead
 * of compile-time cycle constants, and a calibrating policy receives
 * each episode's spread as a cost sample — all computed by the
 * completer from timestamps it already holds, so calibration adds no
 * shared-memory traffic.
 */
#pragma once

#include <cstdint>

#include "barrier/barrier_concepts.hpp"
#include "barrier/central_barrier.hpp"
#include "barrier/combining_tree_barrier.hpp"
#include "core/cost_model.hpp"
#include "core/policy.hpp"
#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

/// Tunables for the reactive barrier's episode monitor.
struct ReactiveBarrierParams {
    /// Arrival fan-in of the tree protocol.
    std::uint32_t fan_in = 4;
    /// An episode whose arrival spread is below participants * this is
    /// "bunched": the central counter would serialize the arrivals.
    /// Sized to a directory-serialized RMW plus slack on the simulated
    /// machine; on native hardware it is a TSC-cycle budget. With
    /// `calibrate` set this is only the *seed*: the per-arrival budget
    /// is re-derived from the measured RMW floor each episode.
    std::uint32_t bunched_cycles_per_arrival = 150;
    /// An episode whose spread exceeds the bunched threshold times this
    /// is "skewed": a straggler dominates and the tree buys nothing.
    std::uint32_t skew_factor = 4;
    /// A completer whose own counter RMW took this long observed
    /// directory queueing directly (central mode's second signal).
    /// Seed only when `calibrate` is set, like the bunched budget.
    std::uint32_t contended_rmw_cycles = 400;
    /// Derive the bunched/contended thresholds at run time from the
    /// completer's measured counter-RMW latency instead of the cycle
    /// constants above. The constants then act as seeds: the initial
    /// RMW floor is bunched_cycles_per_arrival / bunched_rmw_multiple,
    /// so a calibrated barrier starts numerically identical to a
    /// static one and adapts from the first central episode onward.
    bool calibrate = false;
    /// Bunched budget per arrival = this many uncontended RMWs (the
    /// slack over the raw serialization cost; 3 * 50 = the static 150).
    std::uint32_t bunched_rmw_multiple = 3;
    /// A completer RMW at or above this many uncontended RMWs observed
    /// directory queueing (8 * 50 = the static 400).
    std::uint32_t contended_rmw_multiple = 8;
};

/**
 * Reactive barrier selecting between the centralized and combining-tree
 * protocols between episodes.
 *
 * @tparam P      Platform model.
 * @tparam Policy switching policy (Section 3.4); shared with the
 *                reactive mutex/rwlock via the SwitchPolicy concept.
 */
template <Platform P, SwitchPolicy Policy = AlwaysSwitchPolicy>
class ReactiveBarrier {
  public:
    /// Protocol executing the current episode (exact, not a hint).
    enum class Mode : std::uint32_t { kCentral = 0, kTree = 1 };

    /// Per-participant state; reuse the same Node across episodes.
    struct Node {
        typename CentralBarrier<P>::Node central;
        typename CombiningTreeBarrier<P>::Node tree;
    };

    explicit ReactiveBarrier(std::uint32_t participants)
        : ReactiveBarrier(participants, ReactiveBarrierParams{})
    {
    }

    ReactiveBarrier(std::uint32_t participants, ReactiveBarrierParams params,
                    Policy policy = Policy{})
        : central_(participants, /*track_first_arrival=*/true),
          tree_(participants, params.fan_in, /*track_arrival_spread=*/true),
          participants_(participants),
          params_(params),
          rmw_floor_(params.bunched_cycles_per_arrival /
                     (params.bunched_rmw_multiple ? params.bunched_rmw_multiple
                                                  : 1)),
          policy_(policy)
    {
        // Initial protocol: central (the low-contention choice, as the
        // reactive lock starts in TTS mode, Figure 3.27).
        mode_->store(static_cast<std::uint32_t>(Mode::kCentral),
                     std::memory_order_relaxed);
    }

    // ---- Barrier interface -------------------------------------------

    void arrive(Node& n)
    {
        if (mode() == Mode::kCentral) {
            const auto a = central_.arrive_only(n.central);
            if (!a.last) {
                central_.wait_episode(a.episode_sense);
                return;
            }
            episode_consensus(Mode::kCentral,
                              central_.episode_first_arrival(),
                              a.arrive_cycles);
            central_.release_episode(a.episode_sense);
        } else {
            if (!tree_.arrive_only(n.tree)) {
                tree_.wait_episode(n.tree);
                return;
            }
            episode_consensus(Mode::kTree, n.tree.first_arrival,
                              n.tree.arrive_cycles);
            tree_.release_episode(n.tree);
        }
    }

    std::uint32_t participants() const { return participants_; }

    // ---- monitoring (tests, experiments) -----------------------------

    /// Protocol of the upcoming episode. Exact for participants (they
    /// read it after acquiring the previous release); racy inspection
    /// for everyone else.
    Mode mode() const
    {
        return static_cast<Mode>(mode_->load(std::memory_order_relaxed));
    }

    /// Number of completed protocol changes. Race-free for any
    /// *participant* between its own arrivals: no episode can complete
    /// (and no completer can touch this) until that participant
    /// arrives again. Racy inspection for non-participants.
    std::uint64_t protocol_changes() const { return protocol_changes_; }

    /// Policy state access (in-consensus callers only).
    Policy& policy() { return policy_; }

    /// Measured uncontended-RMW floor driving the calibrated
    /// thresholds (in-consensus callers and tests).
    std::uint64_t rmw_floor() const { return rmw_floor_; }

  private:
    /// Calibrating policies additionally receive each episode's spread
    /// as a cost sample (see episode_consensus).
    static constexpr bool kCalibrating = CalibratingSwitchPolicy<Policy>;

    /**
     * The completer's in-consensus step, run after its arrival and
     * before the release: classify the episode, feed the policy, and
     * perform any protocol change. Every other participant is waiting
     * inside the current protocol, so everything here is race-free; the
     * mode store is published by the release that follows.
     */
    void episode_consensus(Mode m, std::uint64_t first_arrival,
                           std::uint64_t arrive_cycles)
    {
        if (participants_ < 2)
            return;  // a 1-participant barrier has no contention axis
        const std::uint64_t end = P::now();
        const std::uint64_t spread =
            end > first_arrival ? end - first_arrival : 0;
        // Classification thresholds: static cycle constants, or (with
        // calibrate) re-derived each episode from the measured RMW
        // floor — the episode-spread distribution's natural unit is
        // "uncontended counter RMWs", which the completer measures for
        // free in central mode.
        std::uint64_t per_arrival = params_.bunched_cycles_per_arrival;
        std::uint64_t contended_rmw = params_.contended_rmw_cycles;
        if (params_.calibrate) {
            if (m == Mode::kCentral)
                sample_rmw_floor(arrive_cycles);
            per_arrival = static_cast<std::uint64_t>(
                              params_.bunched_rmw_multiple) *
                          rmw_floor_;
            contended_rmw = static_cast<std::uint64_t>(
                                params_.contended_rmw_multiple) *
                            rmw_floor_;
        }
        const std::uint64_t bunched_threshold = per_arrival * participants_;
        bool switch_now;
        if (m == Mode::kCentral) {
            const bool bunched = spread <= bunched_threshold ||
                                 arrive_cycles >= contended_rmw;
            // Calibrating policies also receive the episode spread as
            // this episode's cost sample: under a steady workload the
            // spread is the protocol-dependent part of the episode's
            // critical path, so comparing spreads across modes is the
            // barrier analogue of comparing acquisition latencies.
            if constexpr (kCalibrating)
                switch_now = policy_.on_tts_acquire(bunched, spread);
            else
                switch_now = policy_.on_tts_acquire(bunched);
        } else {
            const bool skewed =
                spread >= bunched_threshold * params_.skew_factor;
            if constexpr (kCalibrating)
                switch_now = policy_.on_queue_acquire(skewed, spread);
            else
                switch_now = policy_.on_queue_acquire(skewed);
        }
        if (switch_now) {
            const Mode next =
                m == Mode::kCentral ? Mode::kTree : Mode::kCentral;
            mode_->store(static_cast<std::uint32_t>(next),
                         std::memory_order_relaxed);
            ++protocol_changes_;
            policy_.on_switch();
            // The completer's measurable switching span — from the
            // consensus stamp to here — covers the classification,
            // policy, and mode-store work. The systemic remainder of a
            // barrier change (the next episode running the other
            // protocol cold) is excluded by the policy's
            // first-sample-after-switch discard, and the policy's
            // switch-cost multiplier scales the span to a disruption
            // estimate, exactly as for the locks.
            if constexpr (kCalibrating)
                policy_.on_switch_cycles(P::now() - end);
        }
    }

    /// Decaying minimum of the completer's central-counter RMW latency:
    /// drops to a lower sample immediately, grows toward higher samples
    /// by ~1/16 per central episode (1/4 for the first few, so a
    /// mis-seeded floor heals within a handful of episodes). Tracks the
    /// *uncontended* RMW cost because the min over any window that
    /// contains one quiet arrival is the quiet one.
    void sample_rmw_floor(std::uint64_t sample)
    {
        const std::uint32_t shift = floor_samples_ < 8 ? 2 : 4;
        if (floor_samples_ < 8)
            ++floor_samples_;
        const std::uint64_t grown =
            rmw_floor_ + (rmw_floor_ >> shift) + 1;
        rmw_floor_ = sample < grown ? sample : grown;
    }

    CentralBarrier<P> central_;
    CombiningTreeBarrier<P> tree_;
    const std::uint32_t participants_;

    // The mode word is written once per protocol change and read once
    // per arrival; it lives on its own mostly-read line (Section 3.2.6).
    CacheAligned<typename P::template Atomic<std::uint32_t>> mode_;

    ReactiveBarrierParams params_;
    std::uint64_t rmw_floor_;             // mutated in-consensus only
    std::uint32_t floor_samples_ = 0;     // mutated in-consensus only
    Policy policy_;                       // mutated in-consensus only
    std::uint64_t protocol_changes_ = 0;  // mutated in-consensus only
};

}  // namespace reactive
