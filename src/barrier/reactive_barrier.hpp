/**
 * @file
 * The reactive barrier: dynamically selects among an N-protocol
 * `ProtocolSet` of barrier implementations (core/protocol_set.hpp).
 * The stock two-protocol set pairs the centralized sense-reversing
 * barrier (central_barrier.hpp, optimal at low participant counts and
 * skewed arrivals) with the fan-in-k combining tree
 * (combining_tree_barrier.hpp, optimal at high participant counts
 * under bunched arrivals); the three-protocol set adds the
 * dissemination barrier (dissemination_barrier.hpp, contended-RMW-free
 * log2 P critical path) as the most scalable rung.
 *
 * This is the consensus-object construction of the reactive lock
 * (thesis Sections 3.2.5-3.3.1) carried to a primitive with *no
 * holder*: nobody owns a barrier the way a process owns a lock, so the
 * lock subsystems' rule "protocol changes are made only by the lock
 * holder" has no direct analogue. The barrier substitutes a different
 * consensus point with a stronger property:
 *
 *  - **Each episode elects exactly one in-consensus completer.** Every
 *    slot protocol elects one such process per episode (the arrival
 *    that takes the central counter to zero; the climber that
 *    completes the root; the dissemination protocol's designated
 *    completer). Between that election and the release it performs,
 *    *every other participant is provably quiescent*: each has
 *    finished its arrival and cannot leave the episode's wait — let
 *    alone start the next episode — until the release. The completer
 *    therefore mutates policy state, the mode index, and any slot's
 *    idle state entirely race-free, with no INVALID sentinels, no
 *    retry dispatch, and no switch serialization beyond the episode
 *    order itself (consecutive completers are ordered by the
 *    release/acquire chain of the episodes between them).
 *  - **The mode index is exact, not a hint.** The switch is stored
 *    before the release; every participant's next arrival happens
 *    after acquiring that release, so all participants of an episode
 *    execute the same protocol. This is *stronger* than the lock case
 *    (where racing the mode hint is benign-but-possible) and is what
 *    removes the need for the locks' invalid-protocol retry loops. It
 *    also keeps each slot's episode bookkeeping trivially consistent:
 *    a participant's per-slot state advances exactly once per episode
 *    executed on that slot, uniformly across the participant set.
 *  - **Monitoring rides on arrival** (the analogue of Section 3.2.6):
 *    the completer samples the episode's *arrival spread* — the cycle
 *    gap between the first arrival (stamped for free by the slots: a
 *    single store in the central barrier, a min-combine up the tree,
 *    the same racing CAS in the dissemination protocol) and episode
 *    completion — plus its own arrival latency, which in central mode
 *    measures queueing at the counter's home directory. A small spread
 *    means the participants arrived together and serialization is the
 *    bottleneck (the scalable rungs' regime); a spread of many
 *    thousands of cycles means a straggler dominated and any tree or
 *    round structure is pure overhead (the central regime).
 *
 * Policy interface: the completer classifies the episode into a
 * `ProtocolSignal` — drift +1 (bunched arrivals, or a contended
 * counter RMW on the bottom rung: the current protocol is
 * under-provisioned), drift -1 (straggler-dominated: over-provisioned)
 * — and asks the policy for `next_protocol`. Binary `SwitchPolicy`
 * policies embed through `SelectAdapter` with their historical
 * observation mapping (a central-mode episode feeds
 * `on_tts_acquire(bunched)`, a top-rung episode feeds
 * `on_queue_acquire(skewed)`), so AlwaysSwitch, Competitive3 and
 * Hysteresis apply to the two-protocol set bit-compatibly, with an
 * episode as the unit of observation. N-protocol sets take a
 * `SelectPolicy` (e.g. CalibratedLadderPolicy, whose measured
 * per-rung episode costs rank protocols the drift signal alone
 * cannot).
 *
 * Calibration (core/cost_model.hpp): with `ReactiveBarrierParams::
 * calibrate` the bunched/contended classification thresholds are
 * re-derived each episode from the completer's measured counter-RMW
 * latency (a decaying minimum tracking the uncontended cost) instead
 * of compile-time cycle constants, and a calibrating policy receives
 * each episode's spread as a cost sample — all computed by the
 * completer from timestamps it already holds, so calibration adds no
 * shared-memory traffic.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <tuple>
#include <type_traits>

#include "audit/audit.hpp"
#include "barrier/barrier_concepts.hpp"
#include "barrier/central_barrier.hpp"
#include "barrier/combining_tree_barrier.hpp"
#include "core/cost_model.hpp"
#include "core/policy.hpp"
#include "core/protocol_set.hpp"
#include "platform/cache_line.hpp"
#include "platform/platform_concept.hpp"
#include "platform/thread_slots.hpp"
#include "trace/instrument.hpp"
#include "waiting/reactive/wait_site.hpp"

namespace reactive {

/// Tunables for the reactive barrier's episode monitor.
struct ReactiveBarrierParams {
    /// Arrival fan-in of tree-shaped slot protocols.
    std::uint32_t fan_in = 4;
    /// Topology-aware slot placement (BarrierSlotOptions): with
    /// sockets >= 2, tree-shaped slots assign leaves by socket so
    /// fan-in groups never straddle a socket boundary.
    std::uint32_t sockets = 1;
    /// Participants per socket (0 = balanced, ceil(P / sockets)).
    std::uint32_t cores_per_socket = 0;
    /// An episode whose arrival spread is below participants * this is
    /// "bunched": the central counter would serialize the arrivals.
    /// Sized to a directory-serialized RMW plus slack on the simulated
    /// machine; on native hardware it is a TSC-cycle budget. With
    /// `calibrate` set this is only the *seed*: the per-arrival budget
    /// is re-derived from the measured RMW floor each episode.
    std::uint32_t bunched_cycles_per_arrival = 150;
    /// An episode whose spread exceeds the bunched threshold times this
    /// is "skewed": a straggler dominates and the tree buys nothing.
    std::uint32_t skew_factor = 4;
    /// A completer whose own counter RMW took this long observed
    /// directory queueing directly (central mode's second signal).
    /// Seed only when `calibrate` is set, like the bunched budget.
    std::uint32_t contended_rmw_cycles = 400;
    /// Derive the bunched/contended thresholds at run time from the
    /// completer's measured counter-RMW latency instead of the cycle
    /// constants above. The constants then act as seeds: the initial
    /// RMW floor is bunched_cycles_per_arrival / bunched_rmw_multiple,
    /// so a calibrated barrier starts numerically identical to a
    /// static one and adapts from the first central episode onward.
    bool calibrate = false;
    /// Bunched budget per arrival = this many uncontended RMWs (the
    /// slack over the raw serialization cost; 3 * 50 = the static 150).
    std::uint32_t bunched_rmw_multiple = 3;
    /// A completer RMW at or above this many uncontended RMWs observed
    /// directory queueing (8 * 50 = the static 400).
    std::uint32_t contended_rmw_multiple = 8;
    /**
     * Traffic-free monitoring: drop the arrival-spread machinery (the
     * first-arrival stamp CAS, the min-combine up the tree) and drive
     * the policy purely from quantities the completer owns anyway —
     * the episode *period* (difference of consecutive consensus
     * timestamps; the true wall cost per episode, and unlike the
     * spread directly comparable across protocols) as the cost
     * sample, completer-identity streaks for skew detection (a
     * straggler completes every episode it dominates; in-consensus
     * state only), and the completer's own arrival latency (central's
     * directory-queueing signal; the designated completer's
     * straggler-wait signal). Slots are then constructed with signal
     * tracking off, so the reactive barrier executes the *identical
     * shared-memory operations* as the static protocol it is parked
     * in — monitoring cost measured in the fig_barrier tables drops
     * from up to ~40% of a short bunched episode to zero. **Default
     * on** since the NUMA PR (the spread machinery measurably costs up
     * to ~40% of a short bunched episode; see DESIGN.md): a parked
     * reactive barrier executes the static protocol's exact memory
     * operations, asserted by a mem-op-count regression test. The
     * spread path stays available behind `= false` as the thesis-style
     * signal for one deprecation PR; fig_barrier's two-protocol tables
     * opt back into it to stay comparable with their historical
     * numbers.
     */
    bool free_monitoring = true;
    /// Consecutive episodes completed by the same participant that
    /// classify the regime as straggler-dominated (free monitoring).
    std::uint32_t skew_completer_streak = 3;
};

/// The stock barrier protocol sets, in scalability order.
template <Platform P>
using CentralTreeBarrierSet =
    ProtocolSet<CentralBarrier<P>, CombiningTreeBarrier<P>>;

/**
 * Reactive barrier selecting among the slots of a barrier ProtocolSet
 * between episodes.
 *
 * The waiting axis (waiting/reactive/): with Waiting = ParkWaiting,
 * slots exposing a site-dispatched wait_episode (the central barrier)
 * wait through one barrier-level WaitSite on the completer-published
 * hint; tree- and round-shaped slots keep their local spins (their
 * per-level waits are short by construction, and parking mid-combine
 * would serialize the fan-in). The completer is the consensus point:
 * it alone feeds the WaitSelectPolicy (episode period as the hold
 * analogue, plus its own stashed wake latency from the last episode it
 * parked in) and broadcasts on the site after the release.
 *
 * @tparam P          Platform model.
 * @tparam Policy     switching policy: any N-ary `SelectPolicy`, or —
 *                    for two-protocol sets — any binary `SwitchPolicy`
 *                    (embedded via SelectAdapter; shared with the
 *                    reactive mutex/rwlock).
 * @tparam Set        `ProtocolSet` of BarrierProtocolSlot members,
 *                    ordered by scalability (index 0 = low-contention
 *                    protocol).
 * @tparam Waiting    SpinWaiting (default; byte-identical to the
 *                    pre-subsystem barrier) or ParkWaiting.
 * @tparam WaitPolicy WaitSelectPolicy choosing the waiting mode
 *                    (ParkWaiting instantiations only).
 */
template <Platform P, typename Policy = AlwaysSwitchPolicy,
          typename Set = CentralTreeBarrierSet<P>,
          typename Waiting = SpinWaiting,
          typename WaitPolicy = CalibratedWaitPolicy>
class ReactiveBarrier {
  public:
    /// The select-interface view of the policy parameter.
    using Select = SelectFor<Policy>;
    /// Number of protocols in the set.
    static constexpr std::uint32_t kProtocols = Set::kCount;

    static_assert(SelectPolicy<Select>);
    static_assert(SelectPolicy<Policy> || kProtocols == 2,
                  "binary SwitchPolicy policies embed as the two-protocol "
                  "specialization; N-protocol sets need a SelectPolicy");

    /**
     * Protocol executing the current episode (exact, not a hint). The
     * mode *is* the protocol index; the enumerators name the stock
     * sets' rungs for readability.
     */
    enum class Mode : std::uint32_t {
        kCentral = 0,
        kTree = 1,
        kDissemination = 2,
    };

    /// The barrier-level waiting site for this Waiting tag.
    using Site = WaitSite<P, Waiting>;
    /// Whether episode waits may park (ParkWaiting instantiations).
    static constexpr bool kParking = Site::kParking;

    static_assert(WaitSelectPolicy<WaitPolicy>);

    /// Empty stand-in keeping spin-instantiation Nodes identical to the
    /// pre-subsystem layout.
    struct NoWaitStash {};

    /// Per-participant state (one sub-node per slot); reuse the same
    /// Node across episodes.
    struct Node {
        typename Set::Nodes nodes;
        /// Last parked wait's cost, stashed until this participant is
        /// next in consensus (it feeds the wake-latency estimator only
        /// as a completer). Empty in spin instantiations.
        [[no_unique_address]]
        std::conditional_t<kParking, AwaitResult, NoWaitStash> last_wait{};
    };

    explicit ReactiveBarrier(std::uint32_t participants)
        : ReactiveBarrier(participants, ReactiveBarrierParams{})
    {
    }

    ReactiveBarrier(std::uint32_t participants, ReactiveBarrierParams params,
                    Policy policy = Policy{})
        : set_(participants,
               BarrierSlotOptions{/*track_signals=*/!params.free_monitoring,
                                  /*fan_in=*/params.fan_in,
                                  /*sockets=*/params.sockets,
                                  /*cores_per_socket=*/
                                  params.cores_per_socket}),
          participants_(participants),
          params_(params),
          rmw_floor_(params.bunched_cycles_per_arrival /
                     (params.bunched_rmw_multiple ? params.bunched_rmw_multiple
                                                  : 1)),
          select_(std::move(policy))
    {
        // Initial protocol: index 0 (the low-contention choice, as the
        // reactive lock starts in TTS mode, Figure 3.27).
        mode_->store(0, std::memory_order_relaxed);
        // Runtime-sized ladder policies are sized to this set here (in
        // every build mode — a 2-rung policy over a 3-protocol set
        // would silently never reach the top rung, and an oversized
        // one would burn switching evidence on rungs that do not
        // exist). Explicitly configured sizes equal to kProtocols are
        // untouched, including their Params.
        if constexpr (requires { select_.resize_protocols(kProtocols); })
            select_.resize_protocols(kProtocols);
    }

    // ---- Barrier interface -------------------------------------------

    void arrive(Node& n)
    {
        set_.dispatch(protocol_index(), [&](auto& proto, auto index) {
            auto& pn = std::get<index.value>(n.nodes);
            const BarrierEpisode ep = proto.arrive_only(pn);
            if (!ep.last) {
                // Slots exposing a site-dispatched wait (the central
                // barrier) park under the hint; tree/round slots keep
                // their local spins.
                if constexpr (kParking) {
                    if constexpr (requires(AwaitResult& w) {
                                      proto.wait_episode(pn, wsite_, w);
                                  }) {
                        AwaitResult wr{};
                        proto.wait_episode(pn, wsite_, wr);
                        note_waited(n, wr);
                        return;
                    }
                }
                proto.wait_episode(pn);
                return;
            }
            // In consensus: select the next waiting mode first, so the
            // waiters this release is about to free dispatch under it.
            update_wait_policy(n);
            episode_consensus(static_cast<std::uint32_t>(index.value), ep,
                              &n);
            proto.release_episode(pn);
            // Parking wake rule: the sense flip (and any mode store)
            // above is followed, in the same thread, by the broadcast.
            wake_waiters();
        });
    }

    /// std::barrier-shaped arrival: the participant's persistent Node
    /// lives in a thread-local slot keyed by this barrier's unique
    /// instance token (platform/thread_slots.hpp — the address would
    /// hand a successor barrier at a reused address the predecessor's
    /// stale nodes), so one participant must equal one thread for the
    /// barrier's whole lifetime. arrive() with an explicit Node
    /// remains the primary interface (and the only correct one for
    /// simulated fibers, which share their host thread's slots).
    void arrive_and_wait()
    {
        arrive(*ThreadNodeSlots<Node>::claim(facade_key_));
    }

    std::uint32_t participants() const { return participants_; }

    // ---- monitoring (tests, experiments) -----------------------------

    /// Protocol index of the upcoming episode. Exact for participants
    /// (they read it after acquiring the previous release); racy
    /// inspection for everyone else.
    std::uint32_t protocol_index() const
    {
        return mode_->load(std::memory_order_relaxed);
    }

    /// protocol_index() under the stock sets' conventional names.
    Mode mode() const { return static_cast<Mode>(protocol_index()); }

    /// Number of completed protocol changes. Race-free for any
    /// *participant* between its own arrivals: no episode can complete
    /// (and no completer can touch this) until that participant
    /// arrives again. Racy inspection for non-participants.
    std::uint64_t protocol_changes() const { return protocol_changes_; }

    /// Policy state access (in-consensus callers only). Returns the
    /// policy as passed in (binary policies are unwrapped from their
    /// adapter).
    Policy& policy()
    {
        if constexpr (SelectPolicy<Policy>)
            return select_;
        else
            return select_.underlying();
    }

    /// Direct slot access (tests, experiments).
    template <std::size_t I>
    auto& slot()
    {
        return set_.template get<I>();
    }

    /// Measured uncontended-RMW floor driving the calibrated
    /// thresholds (in-consensus callers and tests).
    std::uint64_t rmw_floor() const { return rmw_floor_; }

    /// Wait-policy state access (in-consensus callers only).
    WaitPolicy& wait_policy()
        requires kParking
    {
        return wstate_.policy;
    }

    /// The packed wait hint currently published to waiters (tests).
    std::uint32_t wait_hint() const { return wsite_.hint(); }

  private:
    /// Calibrating policies additionally receive each episode's spread
    /// as a cost sample (see episode_consensus).
    static constexpr bool kCalibrating = CalibratingSelectPolicy<Select>;

    /// Socket-aware policies also receive the socket-of-previous-
    /// completer bit: an episode whose consensus moved across sockets
    /// carried its hot lines with it, the barrier analogue of the
    /// lock's handoff-locality split (SocketHandoffTracker;
    /// completer-only plain state).
    static constexpr bool kSocketAware = SocketAwareSelect<Select>;

    bool note_completer_socket() { return completer_socket_.note_handoff(); }

    // ---- waiting-mode selection (ParkWaiting instantiations only) ----

    /// Park-axis completer state; empty stand-in as for Node.
    struct ParkWaitState {
        WaitPolicy policy{};
        std::uint64_t last_end = 0;  ///< previous episode's consensus stamp
    };
    struct NoWaitState {};
    using WaitState = std::conditional_t<kParking, ParkWaitState, NoWaitState>;

    /// A parked participant stashes its wait cost (fed to the policy
    /// only once it is next in consensus) and traces the park. Not a
    /// consensus point: no policy state is touched here.
    void note_waited(Node& n, const AwaitResult& wr)
    {
        if constexpr (kParking) {
            if (!wr.blocked)
                return;
            n.last_wait = wr;
            if constexpr (trace::kCompiled) {
                if (trace::enabled()) [[unlikely]] {
                    const auto m = static_cast<std::uint8_t>(
                        unpack_wait_hint(wsite_.hint()).mode);
                    trace::emit(trace::EventType::kPark,
                                trace::ObjectClass::kBarrier, trace_id_, m,
                                m, P::now(), wr.wait_cycles,
                                wr.wake_latency);
                }
            }
        }
    }

    /// Broadcast on the barrier-level site (no-op in spin builds).
    void wake_waiters()
    {
        if constexpr (kParking) {
            if constexpr (trace::kCompiled) {
                if (trace::enabled()) [[unlikely]] {
                    const std::uint32_t w = wsite_.waiters();
                    if (w > 0)
                        trace::emit(trace::EventType::kWake,
                                    trace::ObjectClass::kBarrier, trace_id_,
                                    0, 0, P::now(), w);
                }
            }
            wsite_.wake_all();
        }
    }

    /// The completer (in consensus): fold the episode period into the
    /// wait policy as the hold analogue — an arrival's mean residual
    /// wait is about half a period, so the depth multiplier is
    /// deliberately withheld (queue_depth = 0 makes the policy's
    /// expected wait period/2) — feed its own stashed wake latency, and
    /// publish the new hint before the release frees the waiters.
    void update_wait_policy(Node& n)
    {
        if constexpr (kParking) {
            WaitSignal ws;
            const std::uint64_t now = P::now();
            ws.hold_cycles = wstate_.last_end != 0 && now > wstate_.last_end
                                 ? now - wstate_.last_end
                                 : 0;
            ws.queue_depth = 0;
            ws.now_cycles = now;
            wstate_.last_end = now;
            if (n.last_wait.wake_latency != 0) {
                wstate_.policy.note_wake_latency(n.last_wait.wake_latency);
                n.last_wait.wake_latency = 0;
            }
            const auto old_mode = static_cast<std::uint8_t>(
                unpack_wait_hint(wstate_.policy.hint()).mode);
            const std::uint32_t h = wstate_.policy.on_release(ws);
            const auto new_mode =
                static_cast<std::uint8_t>(unpack_wait_hint(h).mode);
            wsite_.set_hint(h);
            if constexpr (WaitAwareSelect<Select>)
                select_.on_wait_signal(ws);
            if constexpr (trace::kCompiled) {
                if (new_mode != old_mode && trace::enabled()) [[unlikely]] {
                    std::uint64_t ests = 0;
                    std::uint64_t ew = 0;
                    if constexpr (requires {
                                      wstate_.policy.hold_estimate();
                                      wstate_.policy.block_estimate();
                                      wstate_.policy.expected_wait();
                                  }) {
                        ests = (wstate_.policy.hold_estimate() << 32) |
                               (wstate_.policy.block_estimate() &
                                0xffffffffull);
                        ew = wstate_.policy.expected_wait();
                    }
                    trace::emit(trace::EventType::kWaitModeSwitch,
                                trace::ObjectClass::kBarrier, trace_id_,
                                old_mode, new_mode, P::now(), h, ests, ew);
                }
            }
        }
    }

    /**
     * The completer's in-consensus step, run after its arrival and
     * before the release: classify the episode, consult the policy,
     * and perform any protocol change. Every other participant is
     * waiting inside the current protocol, so everything here is
     * race-free; the mode store is published by the release that
     * follows.
     */
    void episode_consensus(std::uint32_t m, const BarrierEpisode& ep,
                           const void* completer)
    {
        if (participants_ < 2)
            return;  // a 1-participant barrier has no contention axis
        const std::uint64_t end = P::now();
        // Classification thresholds: static cycle constants, or (with
        // calibrate) re-derived each episode from the measured RMW
        // floor — the episode-spread distribution's natural unit is
        // "uncontended counter RMWs", which the completer measures for
        // free on the bottom rung.
        std::uint64_t per_arrival = params_.bunched_cycles_per_arrival;
        std::uint64_t contended_rmw = params_.contended_rmw_cycles;
        if (params_.calibrate) {
            if (m == 0)
                sample_rmw_floor(ep.arrive_cycles);
            per_arrival = static_cast<std::uint64_t>(
                              params_.bunched_rmw_multiple) *
                          rmw_floor_;
            contended_rmw = static_cast<std::uint64_t>(
                                params_.contended_rmw_multiple) *
                            rmw_floor_;
        }
        const std::uint64_t bunched_threshold = per_arrival * participants_;
        // Drift along the set's scalability order: the bottom rung's
        // under-provisioning signals are bunched arrivals or direct
        // directory queueing at its counter; higher rungs are
        // over-provisioned when a straggler dominates (skewed) and
        // under-provisioned when arrivals stay bunched and a more
        // scalable rung exists above.
        int drift = 0;
        std::uint64_t sample = 0;
        if (params_.free_monitoring) {
            // Traffic-free signals (see ReactiveBarrierParams): the
            // straggler regime is read off completer-identity streaks
            // — the dominated episodes are completed by the straggler
            // itself, every time — or, for a designated completer, off
            // its own arrival latency (it sat inside its rounds
            // waiting out the straggle window). The cost sample is the
            // episode period: the difference of consecutive consensus
            // timestamps, i.e. the true wall cost of an episode, which
            // unlike the spread needs no stamps and compares across
            // protocols.
            bool skewed;
            bool rotating = false;
            if (ep.fixed_completer) {
                // The designated completer's own rounds wait out any
                // straggler it depends on, so its arrival latency is
                // the skew signal. Known blind spot: if the straggler
                // *is* the designated completer (ids are assigned by
                // first-arrival race, so probability ~1/P per run),
                // its own rounds finish instantly and skew goes
                // undetected — the barrier then idles in this rung
                // through the straggler regime, paying the rung's
                // O(log P) structure (a small constant against the
                // straggle window) until the regime changes.
                skewed = ep.arrive_cycles >=
                         bunched_threshold * params_.skew_factor;
            } else {
                completer_streak_ =
                    completer == prev_completer_ ? completer_streak_ + 1 : 1;
                prev_completer_ = completer;
                skewed = completer_streak_ >= params_.skew_completer_streak;
                // A completer that changed is weak bunched evidence
                // (arrivals raced); it gates the up-drift so a policy
                // that commits on drift alone cannot ratchet to the
                // top rung through signal-free episodes. Measured
                // policies (the intended pairing for free monitoring)
                // treat drift only as probe scheduling either way.
                rotating = completer_streak_ == 1;
            }
            if (m == 0)
                drift = ep.arrive_cycles >= contended_rmw ? +1 : 0;
            else if (skewed)
                drift = -1;
            else if (rotating && m + 1 < kProtocols)
                drift = +1;
            sample = prev_end_ != 0 && end > prev_end_ ? end - prev_end_ : 0;
            prev_end_ = end;
        } else {
            // Thesis-style spread signals: the gap between the
            // episode's first arrival (stamped by the slots) and its
            // completion. Calibrating policies also receive the spread
            // as this episode's cost sample: under a steady workload
            // the spread is the protocol-dependent part of the
            // episode's critical path.
            const std::uint64_t spread =
                end > ep.first_arrival ? end - ep.first_arrival : 0;
            const bool bunched = spread <= bunched_threshold;
            if (m == 0) {
                drift = (bunched || ep.arrive_cycles >= contended_rmw) ? +1
                                                                       : 0;
            } else {
                const bool skewed =
                    spread >= bunched_threshold * params_.skew_factor;
                if (skewed)
                    drift = -1;
                else if (bunched && m + 1 < kProtocols)
                    drift = +1;
            }
            sample = spread;
        }
        const ProtocolSignal sig{m, drift};
        const trace::ProbeWatch<Select> probe(select_, trace::enabled());
        if constexpr (trace::kCompiled) {
            // The episode record reuses the consensus stamp and the
            // classified cost sample — no extra measurement.
            if (trace::enabled()) [[unlikely]]
                trace::emit(trace::EventType::kEpisode,
                            trace::ObjectClass::kBarrier, trace_id_,
                            static_cast<std::uint8_t>(m),
                            static_cast<std::uint8_t>(m), end, sample,
                            participants_);
        }
        std::uint32_t next;
        if constexpr (kCalibrating) {
            if (params_.free_monitoring && sample == 0) {
                if constexpr (kSocketAware)
                    (void)note_completer_socket();
                next = select_.next_protocol(sig);  // no period yet
            } else if constexpr (kSocketAware) {
                next = select_.next_protocol(sig, sample,
                                             note_completer_socket());
            } else {
                next = select_.next_protocol(sig, sample);
            }
        } else {
            next = select_.next_protocol(sig);
        }
        if (next >= kProtocols)
            next = m;  // defensive: a policy bug must not wedge the set
        if (next != m) {
            mode_->store(next, std::memory_order_relaxed);
            ++protocol_changes_;
            select_.on_switch();
            // The completer's measurable switching span — from the
            // consensus stamp to here — covers the classification,
            // policy, and mode-store work. The systemic remainder of a
            // barrier change (the next episode running the other
            // protocol cold) is excluded by the policy's
            // first-sample-after-switch discard, and the policy's
            // switch-cost accounting scales the span to a disruption
            // estimate, exactly as for the locks.
            [[maybe_unused]] std::uint64_t dur = 0;
            if constexpr (kCalibrating) {
                dur = P::now() - end;
                select_.on_switch_cycles(dur);
            }
            if constexpr (trace::kCompiled) {
                if (trace::enabled()) [[unlikely]]
                    trace::emit(trace::EventType::kSwitch,
                                trace::ObjectClass::kBarrier, trace_id_,
                                static_cast<std::uint8_t>(m),
                                static_cast<std::uint8_t>(next), P::now(),
                                trace::pack_signal(sig.protocol, sig.drift),
                                trace::estimator_pair(select_, m, next),
                                dur);
            }
        }
        if constexpr (trace::kCompiled) {
            if (trace::enabled()) [[unlikely]] {
                probe.emit_edges(select_, trace::ObjectClass::kBarrier,
                                 trace_id_, static_cast<std::uint8_t>(m),
                                 static_cast<std::uint8_t>(next), P::now());
                // Regret account: the episode's classified cost sample
                // against the policy's cheapest measured rung. Reuses
                // the consensus stamp and sample — no extra measurement,
                // host memory only (see src/audit/audit.hpp).
                if constexpr (kCalibrating) {
                    if (sample > 0) {
                        if (const auto best = audit::best_alternative(
                                select_, kProtocols)) {
                            const std::uint64_t regret = audit::record(
                                trace::ObjectClass::kBarrier, trace_id_,
                                sample, *best);
                            trace::emit(trace::EventType::kRegret,
                                        trace::ObjectClass::kBarrier,
                                        trace_id_,
                                        static_cast<std::uint8_t>(m),
                                        static_cast<std::uint8_t>(next),
                                        end, sample, *best, regret);
                        }
                    }
                }
            }
        }
    }

    /// Decaying minimum of the completer's bottom-rung counter-RMW
    /// latency: drops to a lower sample immediately, grows toward
    /// higher samples by ~1/16 per bottom-rung episode (1/4 for the
    /// first few, so a mis-seeded floor heals within a handful of
    /// episodes). Tracks the *uncontended* RMW cost because the min
    /// over any window that contains one quiet arrival is the quiet
    /// one.
    void sample_rmw_floor(std::uint64_t sample)
    {
        const std::uint32_t shift = floor_samples_ < 8 ? 2 : 4;
        if (floor_samples_ < 8)
            ++floor_samples_;
        const std::uint64_t grown =
            rmw_floor_ + (rmw_floor_ >> shift) + 1;
        rmw_floor_ = sample < grown ? sample : grown;
    }

    Set set_;
    const std::uint32_t participants_;

    // The mode word is written once per protocol change and read once
    // per arrival; it lives on its own mostly-read line (Section 3.2.6).
    CacheAligned<typename P::template Atomic<std::uint32_t>> mode_;

    ReactiveBarrierParams params_;
    const std::uint64_t facade_key_ = next_object_key();
    std::uint64_t rmw_floor_;             // mutated in-consensus only
    std::uint32_t floor_samples_ = 0;     // mutated in-consensus only
    Select select_;                       // mutated in-consensus only
    std::uint64_t protocol_changes_ = 0;  // mutated in-consensus only
    // Free-monitoring state (mutated in-consensus only).
    std::uint64_t prev_end_ = 0;
    const void* prev_completer_ = nullptr;
    std::uint32_t completer_streak_ = 0;
    // Socket of the previous completer (socket-aware policies only;
    // mutated in-consensus only).
    SocketHandoffTracker<P> completer_socket_;
    // Waiting-mode state: both empty (and branch-free above) for
    // SpinWaiting instantiations.
    [[no_unique_address]] Site wsite_;
    [[no_unique_address]] WaitState wstate_;  // mutated in-consensus only
    // Trace identity (0 when tracing is compiled out). Unconditional
    // member so object layout is identical in both build modes.
    std::uint32_t trace_id_ =
        trace::new_object(trace::ObjectClass::kBarrier);
};

}  // namespace reactive
