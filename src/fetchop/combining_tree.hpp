/**
 * @file
 * Software combining tree for fetch-and-op (thesis Section 3.1.2 and
 * Appendix C).
 *
 * The thesis uses Goodman, Vernon & Woest's combining tree [15]; its
 * four-part pseudo-code appears only as figures in the original. This
 * implementation follows the equivalent rendezvous formulation of the
 * same protocol (as popularized by Herlihy & Shavit): processes ascend
 * the radix-2 tree; when two meet at a node their operations are
 * combined and one of them proceeds with the combined operation while
 * the other waits at that node; the process reaching the root applies
 * the combined operation and descends, distributing results. The
 * combining behaviour — O(log P) latency, parallel throughput, one root
 * update per combined batch — is what every Chapter 3 experiment
 * measures, and is identical between the two formulations.
 *
 * Reactive-algorithm hooks (Appendix C / Section 3.3.2): the root is the
 * protocol's *consensus object*. It carries a validity flag;
 * `invalidate()` / `validate()` take the root's node lock, so protocol
 * changes serialize with root operations exactly as the consensus-object
 * framework requires. A process that reaches an invalid root descends
 * the tree distributing "retry" to everyone it combined with, and
 * `apply()` reports failure so the caller can retry with another
 * protocol. Each combined batch also piggybacks a request count so the
 * process performing the root update can observe the combining rate
 * (the statistic the reactive fetch-and-op's switching policy monitors).
 */
#pragma once

#include <atomic>
#include <cassert>
#ifdef REACTIVE_TREE_TRACE
#include <cstdio>
#define RTREE_TRACE(...) std::fprintf(stderr, __VA_ARGS__)
#else
#define RTREE_TRACE(...) (void)0
#endif
#include <cstdint>
#include <vector>

#include "fetchop/fetchop_concepts.hpp"
#include "platform/cache_line.hpp"
#ifdef REACTIVE_TREE_TRACE
#include "sim/machine.hpp"
#endif
#include "platform/platform_concept.hpp"

namespace reactive {

/// Result of one combining-tree operation.
struct TreeResult {
    FetchOpValue prior = 0;      ///< value before this op (valid only if ok)
    std::uint32_t combined = 0;  ///< requests in the batch (root performer only)
    bool ok = false;             ///< false => root was invalid, retry elsewhere
    bool at_root = false;        ///< true if this process performed the root op
    bool root_retired = false;   ///< true if the root hook invalidated the root
    FetchOpValue value_after = 0;  ///< variable value after this batch (root
                                   ///< performer only; used for state transfer
                                   ///< during protocol changes)
};

/**
 * Radix-2 software combining tree computing fetch-and-add.
 *
 * Correct for any number of concurrent processes and any leaf mapping
 * (a node admits two active processes per combining round; later
 * arrivals wait for the next round). Performance is best when at most
 * two processes map to each leaf, matching the thesis' configuration of
 * one leaf per processor pair equivalent.
 */
template <Platform P>
class CombiningTree {
    enum Status : std::uint32_t {
        kIdle = 0,
        kFirst = 1,
        kSecond = 2,
        kResult = 3,
        kRoot = 4,
    };

    struct alignas(kCacheLineSize) TreeNode {
        typename P::template Atomic<std::uint32_t> mutex{0};  ///< node spinlock
        std::uint32_t status = kIdle;
        bool busy = false;       ///< rendezvous gate ("locked" in the literature)
        bool result_ok = false;  ///< validity of distributed result
        FetchOpValue first_delta = 0;   ///< combined delta of the FIRST process
        std::uint32_t first_count = 0;  ///< batch size of the FIRST process
        FetchOpValue second_delta = 0;  ///< deposit of the SECOND process
        std::uint32_t second_count = 0;
        FetchOpValue result = 0;  ///< at root: the variable; else distributed value
        TreeNode* parent = nullptr;
    };

  public:
    static constexpr std::uint32_t kMaxDepth = 32;

    /// Per-call context: the leaf this process enters the tree at.
    struct Node {
        std::uint32_t leaf = 0;
    };

    /**
     * @param width   number of leaves (rounded up to a power of two).
     * @param initial initial value of the fetch-and-op variable.
     */
    explicit CombiningTree(std::uint32_t width = 32, FetchOpValue initial = 0)
        : width_(round_up_pow2(width)), nodes_(2 * width_ - 1)
    {
        for (std::uint32_t i = 1; i < nodes_.size(); ++i)
            nodes_[i].value.parent = &nodes_[(i - 1) / 2].value;
        nodes_[0].value.status = kRoot;
        nodes_[0].value.result = initial;
        root_valid_ = true;
    }

    /**
     * Performs fetch-and-add of @p delta entering at @p node.leaf.
     *
     * On success returns {prior, batch, ok=true}. If the root was found
     * invalid (reactive protocol change in progress), every process in
     * the combined batch receives ok=false and must retry with the
     * currently valid protocol.
     */
    TreeResult apply(Node& node, FetchOpValue delta)
    {
        return apply(node, delta, [](std::uint32_t) { return false; });
    }

    /**
     * Like apply(), with a root hook for the reactive algorithm
     * (Section 3.3.2): after a valid root update the hook is invoked —
     * under the root's node lock, i.e. in-consensus — with the batch
     * size that reached the root. Returning true retires the root
     * (root_valid <- false); the performer learns this via
     * `root_retired`/`value_after` and carries the state to the next
     * protocol. The current batch still completes normally.
     */
    template <typename RootHook>
    TreeResult apply(Node& node, FetchOpValue delta, RootHook&& hook)
    {
        TreeNode* leaf = &nodes_[width_ - 1 + (node.leaf % width_)].value;
        TreeNode* path[kMaxDepth];
        std::uint32_t depth = 0;

        // Pre-combining phase: ascend while we are the first arrival.
        TreeNode* stop = leaf;
        while (precombine(stop))
            stop = stop->parent;

        // Combining phase: lock our path and accumulate deposits.
        FetchOpValue combined_delta = delta;
        std::uint32_t combined_count = 1;
        for (TreeNode* n = leaf; n != stop; n = n->parent) {
            RTREE_TRACE("combE n=%ld enter\n", long(n - &nodes_[0].value));
            combine(n, combined_delta, combined_count);
            assert(depth < kMaxDepth);
            path[depth++] = n;
        }

        // Operation phase: apply at the root, or rendezvous at our stop
        // node and wait for the distributed result.
        TreeResult res = op(stop, combined_delta, combined_count, hook);

        // Distribution phase: hand results (or retry signals) back down.
        while (depth > 0) {
            TreeNode* n = path[--depth];
            distribute(n, res.prior, res.ok);
        }
        return res;
    }

    /// FetchOp-concept interface: retries until a valid root op succeeds.
    FetchOpValue fetch_add(Node& node, FetchOpValue delta)
    {
        for (;;) {
            TreeResult r = apply(node, delta);
            if (r.ok)
                return r.prior;
            P::pause();
        }
    }

    /**
     * Invalidates the root consensus object.
     * @return true if this call transitioned valid -> invalid.
     */
    bool invalidate()
    {
        TreeNode* root = &nodes_[0].value;
        lock_node(root);
        const bool won = root_valid_;
        root_valid_ = false;
        unlock_node(root);
        return won;
    }

    /// Updates the variable and re-validates the root consensus object.
    void validate(FetchOpValue value)
    {
        TreeNode* root = &nodes_[0].value;
        lock_node(root);
        root->result = value;
        root_valid_ = true;
        unlock_node(root);
    }

    /// Racy validity check (a hint, exactly like the thesis' mode variable).
    bool is_valid() const { return root_valid_; }

    /// Reads the current value (takes the root lock).
    FetchOpValue read()
    {
        TreeNode* root = &nodes_[0].value;
        lock_node(root);
        const FetchOpValue v = root->result;
        unlock_node(root);
        return v;
    }

    std::uint32_t width() const { return width_; }

  private:
    static std::uint32_t round_up_pow2(std::uint32_t w)
    {
        std::uint32_t r = 1;
        while (r < w)
            r <<= 1;
        return r;
    }

    void lock_node(TreeNode* n)
    {
#ifdef REACTIVE_TREE_TRACE
        long spins = 0;
        static long ev = 0;
#endif
        std::uint32_t bound = 16;
        for (;;) {
            while (n->mutex.load(std::memory_order_relaxed) != 0) {
                P::pause();
#ifdef REACTIVE_TREE_TRACE
                if (++spins % 50000 == 0)
                    RTREE_TRACE("spinL n=%ld mutex busy=%d status=%u\n",
                                long(n - &nodes_[0].value), (int)n->busy, n->status);
#endif
            }
#ifdef REACTIVE_TREE_TRACE
            bool got = n->mutex.exchange(1, std::memory_order_acquire) == 0;
            if (long(n - &nodes_[0].value) == 1 && ++ev < 60)
                RTREE_TRACE("cpu%u ex n=1 got=%d\n", ::reactive::sim::current_cpu(), (int)got);
            if (got) return;
#else
            if (n->mutex.exchange(1, std::memory_order_acquire) == 0)
                return;
#endif
            poll_pause(bound);  // lost the race: re-poll politely
#ifdef REACTIVE_TREE_TRACE
            if (++spins % 50000 == 0)
                RTREE_TRACE("spinX n=%ld exchange-fail busy=%d status=%u\n",
                            long(n - &nodes_[0].value), (int)n->busy, n->status);
#endif
        }
    }

    void unlock_node(TreeNode* n)
    {
        n->mutex.store(0, std::memory_order_release);
#ifdef REACTIVE_TREE_TRACE
        static long uev = 0;
        if (long(n - &nodes_[0].value) == 1 && ++uev < 60)
            RTREE_TRACE("cpu%u un n=1\n", ::reactive::sim::current_cpu());
#endif
    }

    /// Randomized, growing poll interval for the tree's wait loops.
    /// Plain periodic polling can phase-lock two processes sharing a
    /// node (each always sampling while the other holds it); the delay
    /// must also be able to exceed a coherence transaction's service
    /// time or the interleaving order never changes. This is the
    /// randomized backoff the thesis prescribes for every contended
    /// spin loop (Section 3.1.1).
    static void poll_pause(std::uint32_t& bound)
    {
        P::delay(P::random_below(bound));
        if (bound < 512)
            bound <<= 1;
        P::pause();
    }

    /**
     * First-arrival check at @p n. Returns true if the caller should
     * continue ascending (it was first), false if @p n is its stop node.
     * Unexpected states (a previous round still draining) are waited out,
     * which is what makes the tree safe for >2 processes per leaf.
     */
    bool precombine(TreeNode* n)
    {
#ifdef REACTIVE_TREE_TRACE
        long spins = 0;
#endif
        std::uint32_t bound = 16;
        for (;;) {
#ifdef REACTIVE_TREE_TRACE
            if (++spins % 50000 == 0)
                RTREE_TRACE("spinP n=%ld busy=%d status=%u\n",
                            long(n - &nodes_[0].value), (int)n->busy, n->status);
#endif
            lock_node(n);
            if (!n->busy) {
                switch (n->status) {
                case kIdle:
                    n->status = kFirst;
                    unlock_node(n);
                    RTREE_TRACE("pre  n=%ld FIRST\n", long(n - &nodes_[0].value));
                    return true;
                case kFirst:
                    n->busy = true;  // bar the first process until we deposit
                    n->status = kSecond;
                    unlock_node(n);
                    RTREE_TRACE("pre  n=%ld SECOND\n", long(n - &nodes_[0].value));
                    return false;
                case kRoot:
                    unlock_node(n);
                    return false;
                default:
                    break;  // kSecond/kResult: previous round draining
                }
            }
            unlock_node(n);
            poll_pause(bound);
        }
    }

    /**
     * Combining step at a path node: waits for a possible second
     * process' deposit, then folds it into the accumulator and re-bars
     * the node until distribution.
     */
    void combine(TreeNode* n, FetchOpValue& delta, std::uint32_t& count)
    {
#ifdef REACTIVE_TREE_TRACE
        long spins = 0;
#endif
        std::uint32_t bound = 16;
        for (;;) {
            lock_node(n);
            if (!n->busy)
                break;
            unlock_node(n);
            poll_pause(bound);
#ifdef REACTIVE_TREE_TRACE
            if (++spins % 50000 == 0)
                RTREE_TRACE("spinC n=%ld busy=%d status=%u\n",
                            long(n - &nodes_[0].value), (int)n->busy, n->status);
#endif
        }
        n->busy = true;
        n->first_delta = delta;
        n->first_count = count;
        if (n->status == kSecond) {
            delta += n->second_delta;
            count += n->second_count;
        }
        unlock_node(n);
        RTREE_TRACE("comb n=%ld status=%u delta=%lld\n", long(n - &nodes_[0].value), n->status, (long long)delta);
    }

    /// Root update (consensus object access) or rendezvous wait.
    template <typename RootHook>
    TreeResult op(TreeNode* stop, FetchOpValue delta, std::uint32_t count,
                  RootHook&& hook)
    {
        TreeResult res;
        lock_node(stop);
        if (stop->status == kRoot) {
            RTREE_TRACE("root delta=%lld count=%u\n", (long long)delta, count);
            res.at_root = true;
            res.combined = count;
            if (root_valid_) {
                res.ok = true;
                res.prior = stop->result;
                stop->result += delta;
                res.value_after = stop->result;
                if (hook(count)) {
                    root_valid_ = false;
                    res.root_retired = true;
                }
            }
            unlock_node(stop);
            return res;
        }
        // We are the SECOND process at our stop node: deposit our batch,
        // release the gate so the FIRST process can combine past us, and
        // wait for the distributed result.
        assert(stop->status == kSecond);
        stop->second_delta = delta;
        stop->second_count = count;
        stop->busy = false;
        unlock_node(stop);
        RTREE_TRACE("dep  n=%ld delta=%lld\n", long(stop - &nodes_[0].value), (long long)delta);

#ifdef REACTIVE_TREE_TRACE
        long spins = 0;
#endif
        std::uint32_t bound = 16;
        for (;;) {
            lock_node(stop);
            if (stop->status == kResult)
                break;
            unlock_node(stop);
            poll_pause(bound);
#ifdef REACTIVE_TREE_TRACE
            if (++spins % 50000 == 0)
                RTREE_TRACE("spinR n=%ld busy=%d status=%u\n",
                            long(stop - &nodes_[0].value), (int)stop->busy, stop->status);
#endif
        }
        res.ok = stop->result_ok;
        res.prior = stop->result;
        stop->status = kIdle;
        stop->busy = false;
        unlock_node(stop);
        return res;
    }

    /**
     * Distribution step on the way down. @p ok false propagates the
     * "root was invalid, retry" signal to the waiting second process.
     */
    void distribute(TreeNode* n, FetchOpValue prior, bool ok)
    {
        lock_node(n);
        RTREE_TRACE("dist n=%ld status=%u prior=%lld\n", long(n - &nodes_[0].value), n->status, (long long)prior);
        if (n->status == kFirst) {
            // Nobody joined below this node: recycle it.
            n->status = kIdle;
            n->busy = false;
        } else {
            // A second process waits here: its result is the prior value
            // plus our own sub-batch (its ops serialize after ours).
            assert(n->status == kSecond);
            n->result = prior + n->first_delta;
            n->result_ok = ok;
            n->status = kResult;
        }
        unlock_node(n);
    }

    std::uint32_t width_ = 0;
    std::vector<CacheAligned<TreeNode>> nodes_;
    bool root_valid_ = true;  // guarded by the root's node lock
};

/**
 * FetchOp-concept adapter: a passive combining-tree counter whose
 * processes are assigned leaves round-robin.
 */
template <Platform P>
class CombiningFetchOp {
  public:
    struct Node {
        typename CombiningTree<P>::Node tree_node;
        bool assigned = false;
    };

    explicit CombiningFetchOp(std::uint32_t width = 32, FetchOpValue initial = 0)
        : tree_(width, initial)
    {
    }

    FetchOpValue fetch_add(Node& node, FetchOpValue delta)
    {
        if (!node.assigned) {
            node.tree_node.leaf =
                next_leaf_.fetch_add(1, std::memory_order_relaxed);
            node.assigned = true;
        }
        return tree_.fetch_add(node.tree_node, delta);
    }

    FetchOpValue read() { return tree_.read(); }

    CombiningTree<P>& tree() { return tree_; }

  private:
    CombiningTree<P> tree_;
    typename P::template Atomic<std::uint32_t> next_leaf_{0};
};

}  // namespace reactive
