/**
 * @file
 * Centralized, lock-protected fetch-and-op (thesis Section 3.1.2,
 * "Lock-Based Fetch-and-Op").
 *
 * A process acquires the lock, updates the variable, and releases the
 * lock. With a test-and-test-and-set lock this is the lowest-latency
 * protocol at low contention; with an MCS lock it degrades gracefully at
 * moderate contention; both serialize all operations, which is what the
 * combining tree exists to avoid at high contention.
 */
#pragma once

#include <atomic>

#include "fetchop/fetchop_concepts.hpp"
#include "locks/lock_concepts.hpp"
#include "platform/platform_concept.hpp"

namespace reactive {

/**
 * fetch-and-add over a variable protected by any NodeLock.
 *
 * The variable itself is an atomic so the simulated platform charges
 * coherence costs for it; inside the critical section only relaxed
 * accesses are needed (the lock provides ordering).
 */
template <Platform P, NodeLock Lock>
class LockedFetchOp {
  public:
    struct Node {
        typename Lock::Node lock_node;
    };

    LockedFetchOp() = default;
    explicit LockedFetchOp(FetchOpValue initial) { value_.store(initial); }

    FetchOpValue fetch_add(Node& node, FetchOpValue delta)
    {
        lock_.lock(node.lock_node);
        const FetchOpValue prior = value_.load(std::memory_order_relaxed);
        value_.store(prior + delta, std::memory_order_relaxed);
        lock_.unlock(node.lock_node);
        return prior;
    }

    /// Unsynchronized read of the current value (quiescent use only).
    FetchOpValue read() const
    {
        return value_.load(std::memory_order_acquire);
    }

  private:
    Lock lock_;
    typename P::template Atomic<FetchOpValue> value_{0};
};

}  // namespace reactive
