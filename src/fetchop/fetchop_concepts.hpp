/**
 * @file
 * Concept for fetch-and-op objects (thesis Section 3.1.2).
 *
 * The thesis evaluates *combinable* fetch-and-op, using
 * fetch-and-increment as the representative operation, so the interface
 * is fetch_add over a 64-bit integer. All implementations return the
 * value of the variable immediately *before* their own contribution was
 * applied, and the sequence of returned values for concurrent operations
 * is always consistent with some total order of the additions
 * (linearizability of the counter) — the property the test suite checks.
 */
#pragma once

#include <concepts>
#include <cstdint>

namespace reactive {

/// Value type used by every fetch-and-op protocol in the library.
using FetchOpValue = std::int64_t;

// clang-format off
/// A linearizable fetch-and-add object with per-call context.
template <typename F>
concept FetchOp = requires(F f, typename F::Node n, FetchOpValue v) {
    typename F::Node;
    { f.fetch_add(n, v) } -> std::same_as<FetchOpValue>;
    { f.read() } -> std::same_as<FetchOpValue>;
};
// clang-format on

}  // namespace reactive
