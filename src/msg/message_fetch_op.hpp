/**
 * @file
 * Message-passing fetch-and-op protocols (thesis Section 3.6).
 *
 * Two protocols:
 *
 *  - `MessageFetchOp`: the centralized server. The fetch-and-op
 *    variable lives in the private memory of a designated processor; a
 *    request is one message, the reply carries the prior value — "the
 *    theoretical minimum of two messages to perform a fetch-and-op".
 *    The server's handler also observes request spacing, the signal the
 *    reactive algorithm uses to escalate to the combining tree.
 *
 *  - `MessageCombiningTree`: a combining tree traversed by messages.
 *    Each tree node is hosted on a processor; a request handler either
 *    holds the request briefly (a combining window, modelled with a
 *    delayed FLUSH message to self) or combines it with a waiting
 *    sibling request and relays the combined operation upward. Replies
 *    descend the tree distributing results, matching the protocol
 *    sketch in Section 3.6.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fetchop/fetchop_concepts.hpp"
#include "sim/machine.hpp"

namespace reactive::msg {

/// Reply codes for fetch-and-op requests.
enum class OpReply : std::uint8_t { kPending = 0, kDone, kRetry };

/// Centralized message-passing fetch-and-op server.
class MessageFetchOp {
  public:
    struct Node {
        OpReply reply = OpReply::kPending;
        FetchOpValue prior = 0;
        bool hot = false;  ///< server-observed contention hint
    };

    explicit MessageFetchOp(std::uint32_t server, FetchOpValue initial = 0,
                            bool initially_valid = true,
                            std::uint64_t hot_gap_cycles = 400)
        : server_(server), value_(initial), valid_(initially_valid),
          hot_gap_(hot_gap_cycles)
    {
    }

    /**
     * Performs fetch-and-add via one request/reply round trip.
     * Returns false if the protocol is invalid (retry elsewhere).
     */
    bool fetch_add(Node& node, FetchOpValue delta)
    {
        node.reply = OpReply::kPending;
        sim::Machine& m = *sim::current_machine();
        const std::uint32_t self = sim::current_cpu();
        Node* pn = &node;
        m.send(server_, [this, &m, self, pn, delta] {
            if (!valid_) {
                m.send(self, [pn] { pn->reply = OpReply::kRetry; });
                return;
            }
            const FetchOpValue prior = value_;
            value_ += delta;
            // Contention estimate: back-to-back requests (small gaps
            // between arrivals at the server) mark the object "hot".
            const std::uint64_t arr = m.cycles(server_);
            const bool hot = (arr - last_arrival_) < hot_gap_;
            last_arrival_ = arr;
            hot_streak_ = hot ? hot_streak_ + 1 : 0;
            const bool is_hot = hot_streak_ >= 4;
            m.send(self, [pn, prior, is_hot] {
                pn->prior = prior;
                pn->hot = is_hot;
                pn->reply = OpReply::kDone;
            });
        });
        while (node.reply == OpReply::kPending)
            sim::pause();
        return node.reply == OpReply::kDone;
    }

    /**
     * Retires the protocol. Decided atomically in the server handler;
     * returns true only to the single caller that performed the
     * valid -> invalid transition (the protocol-change winner).
     */
    bool invalidate()
    {
        sim::Machine& m = *sim::current_machine();
        int acked = 0;  // 0 pending, 1 won, 2 lost
        int* pa = &acked;
        const std::uint32_t self = sim::current_cpu();
        m.send(server_, [this, &m, self, pa] {
            const bool won = valid_;
            valid_ = false;
            m.send(self, [pa, won] { *pa = won ? 1 : 2; });
        });
        while (acked == 0)
            sim::pause();
        return acked == 1;
    }

    void validate(FetchOpValue v)
    {
        sim::Machine& m = *sim::current_machine();
        bool acked = false;
        bool* pa = &acked;
        const std::uint32_t self = sim::current_cpu();
        m.send(server_, [this, &m, self, pa, v] {
            valid_ = true;
            value_ = v;
            hot_streak_ = 0;
            m.send(self, [pa] { *pa = true; });
        });
        while (!acked)
            sim::pause();
    }

    /// Host-side quiescent read (after Machine::run()).
    FetchOpValue read_quiescent() const { return value_; }

  private:
    const std::uint32_t server_;
    // Server-handler state.
    FetchOpValue value_;
    bool valid_;
    std::uint64_t last_arrival_ = 0;
    std::uint32_t hot_streak_ = 0;
    std::uint64_t hot_gap_;
};

/**
 * Message-driven combining tree.
 *
 * Tree nodes are spread round-robin across processors. A leaf-bound
 * request message starts the ascent; at each node the handler either
 * combines the request with a parked one — recording a *split record*
 * at that node and relaying the combined request upward — or parks it
 * and schedules a FLUSH to itself after `combine_window` cycles. The
 * root applies the batch and starts the descent: reply messages visit
 * the split records, each split handing the correct prefix value to its
 * two sub-batches, so reply distribution is as parallel as the ascent.
 */
class MessageCombiningTree {
  public:
    struct Node {
        OpReply reply = OpReply::kPending;
        FetchOpValue prior = 0;
        std::uint32_t batch = 0;  ///< batch size seen at the root (hint)
    };

    /**
     * @param nprocs         processors participating (= leaves).
     * @param combine_window cycles a lone request waits for a partner.
     */
    explicit MessageCombiningTree(std::uint32_t nprocs, FetchOpValue initial = 0,
                                  bool initially_valid = true,
                                  std::uint32_t combine_window = 120)
        : valid_(initially_valid), value_(initial), window_(combine_window)
    {
        std::uint32_t w = 1;
        while (w < nprocs)
            w <<= 1;
        width_ = w;
        tree_.resize(2 * w - 1);
        for (std::uint32_t i = 0; i < tree_.size(); ++i)
            tree_[i].home = i % nprocs;
    }

    /// Performs fetch-and-add; false = protocol invalid, retry.
    bool fetch_add(Node& node, FetchOpValue delta)
    {
        node.reply = OpReply::kPending;
        sim::Machine& m = *sim::current_machine();
        const std::uint32_t self = sim::current_cpu();
        const std::uint32_t leaf =
            static_cast<std::uint32_t>(tree_.size()) - width_ + (self % width_);
        Request req;
        req.party = Party::leaf(self, &node);
        req.delta = delta;
        req.count = 1;
        send_to_node(m, leaf, req);
        while (node.reply == OpReply::kPending)
            sim::pause();
        return node.reply == OpReply::kDone;
    }

    /// Retires the protocol; true only for the winning transition.
    bool invalidate()
    {
        sim::Machine& m = *sim::current_machine();
        const std::uint32_t self = sim::current_cpu();
        int acked = 0;
        int* pa = &acked;
        m.send(tree_[0].home, [this, &m, self, pa] {
            const bool won = valid_;
            valid_ = false;
            m.send(self, [pa, won] { *pa = won ? 1 : 2; });
        });
        while (acked == 0)
            sim::pause();
        return acked == 1;
    }

    void validate(FetchOpValue v) { set_valid(true, v); }

    FetchOpValue read_quiescent() const { return value_; }

  private:
    /// A reply destination: a requester, or a split record in the tree.
    struct Party {
        bool is_split = false;
        std::uint32_t proc = 0;       ///< leaf: requester processor
        Node* node = nullptr;         ///< leaf: requester mailbox
        std::uint32_t split_idx = 0;  ///< split: tree node index
        std::uint64_t split_seq = 0;  ///< split: record key

        static Party leaf(std::uint32_t proc, Node* node)
        {
            Party p;
            p.proc = proc;
            p.node = node;
            return p;
        }
        static Party split(std::uint32_t idx, std::uint64_t seq)
        {
            Party p;
            p.is_split = true;
            p.split_idx = idx;
            p.split_seq = seq;
            return p;
        }
    };

    /// An in-flight (possibly combined) request ascending the tree.
    struct Request {
        Party party;
        FetchOpValue delta = 0;
        std::uint32_t count = 0;
    };

    /// Split record left behind by a combine: on descent, `first` gets
    /// the incoming prior and `second` gets prior + delta1.
    struct Split {
        Party first;
        Party second;
        FetchOpValue delta1 = 0;
    };

    struct TreeNode {
        std::uint32_t home = 0;      ///< hosting processor
        bool waiting = false;        ///< a lone request parked here
        Request parked{};
        std::uint64_t seq = 0;       ///< park/split sequence numbers
        std::unordered_map<std::uint64_t, Split> splits;
    };

    void set_valid(bool v, FetchOpValue val)
    {
        sim::Machine& m = *sim::current_machine();
        const std::uint32_t self = sim::current_cpu();
        bool acked = false;
        bool* pa = &acked;
        m.send(tree_[0].home, [this, &m, self, pa, v, val] {
            valid_ = v;
            if (v)
                value_ = val;
            m.send(self, [pa] { *pa = true; });
        });
        while (!acked)
            sim::pause();
    }

    void send_to_node(sim::Machine& m, std::uint32_t idx, Request req)
    {
        m.send(tree_[idx].home, [this, &m, idx, req] { arrive(m, idx, req); });
    }

    /// Handler: a request arrives at tree node @p idx on its ascent.
    void arrive(sim::Machine& m, std::uint32_t idx, Request req)
    {
        if (idx == 0) {
            apply_at_root(m, req);
            return;
        }
        TreeNode& n = tree_[idx];
        if (n.waiting) {
            // Combine with the parked request: leave a split record and
            // relay the combined operation upward.
            Request up = n.parked;
            n.waiting = false;
            const std::uint64_t key = ++n.seq;
            n.splits.emplace(key, Split{up.party, req.party, up.delta});
            Request combined;
            combined.party = Party::split(idx, key);
            combined.delta = up.delta + req.delta;
            combined.count = up.count + req.count;
            send_to_node(m, (idx - 1) / 2, combined);
            return;
        }
        // Park and schedule a flush in case no partner shows up.
        n.waiting = true;
        n.parked = req;
        const std::uint64_t seq = ++n.seq;
        m.send_delayed(n.home, window_,
                       [this, &m, idx, seq] { flush(m, idx, seq); });
    }

    /// Handler: the combining window expired for a parked request.
    void flush(sim::Machine& m, std::uint32_t idx, std::uint64_t seq)
    {
        TreeNode& n = tree_[idx];
        if (!n.waiting || n.seq != seq)
            return;  // already combined or superseded
        Request up = n.parked;
        n.waiting = false;
        ++n.seq;
        send_to_node(m, (idx - 1) / 2, up);
    }

    /// Handler at the root's processor: apply and start the descent.
    void apply_at_root(sim::Machine& m, const Request& req)
    {
        if (!valid_) {
            descend(m, req.party, 0, 0, /*ok=*/false);
            return;
        }
        const FetchOpValue prior = value_;
        value_ += req.delta;
        descend(m, req.party, prior, req.count, /*ok=*/true);
    }

    /// Routes a result (or retry) to a party; split parties recurse via
    /// a message to the split's home processor.
    void descend(sim::Machine& m, const Party& party, FetchOpValue prior,
                 std::uint32_t batch, bool ok)
    {
        if (!party.is_split) {
            m.send(party.proc, [pn = party.node, prior, batch, ok] {
                pn->prior = prior;
                pn->batch = batch;
                pn->reply = ok ? OpReply::kDone : OpReply::kRetry;
            });
            return;
        }
        const std::uint32_t idx = party.split_idx;
        const std::uint64_t key = party.split_seq;
        m.send(tree_[idx].home, [this, &m, idx, key, prior, batch, ok] {
            auto it = tree_[idx].splits.find(key);
            if (it == tree_[idx].splits.end())
                return;  // cannot happen; defensive
            Split s = it->second;
            tree_[idx].splits.erase(it);
            descend(m, s.first, prior, batch, ok);
            descend(m, s.second, prior + s.delta1, batch, ok);
        });
    }

    std::uint32_t width_ = 1;
    std::vector<TreeNode> tree_;
    // Root-handler state.
    bool valid_;
    FetchOpValue value_;
    std::uint32_t window_;
};

}  // namespace reactive::msg
