/**
 * @file
 * Reactive algorithms that select between shared-memory and
 * message-passing protocols (thesis Section 3.6).
 *
 * `ReactiveMessageLock` chooses between the shared-memory
 * test-and-test-and-set protocol and the message-passing queue lock;
 * `ReactiveMessageFetchOp` chooses among the shared-memory TTS-lock
 * counter, the centralized message-passing fetch-and-op, and the
 * message-passing combining tree. For the message protocols the
 * in-consensus point is the manager/server/root *handler* — "a process
 * reaches in-consensus when executing inside an atomic message handler,
 * and requires no locking".
 *
 * The same invariants as the shared-memory reactive algorithms hold:
 * at most one protocol valid at a time; mode variables are hints;
 * wrong-protocol executions bounce off busy/invalid consensus objects
 * and re-dispatch.
 */
#pragma once

#include <cstdint>
#include <optional>

#include "fetchop/fetchop_concepts.hpp"
#include "msg/message_fetch_op.hpp"
#include "msg/message_lock.hpp"
#include "platform/backoff.hpp"
#include "platform/cache_line.hpp"
#include "sim/memory.hpp"
#include "sim/sim_platform.hpp"

namespace reactive::msg {

/// Tunables shared by the reactive message-passing algorithms.
struct ReactiveMsgParams {
    std::uint32_t tts_retry_limit = 8;
    std::uint32_t empty_queue_limit = 4;
    BackoffParams backoff = BackoffParams::for_contenders(64);
};

/**
 * Reactive lock over {shared-memory TTS, message-passing queue lock}.
 */
class ReactiveMessageLock {
  public:
    enum class Mode : std::uint32_t { kTts = 0, kMsg = 1 };

    /// Release token (same idea as ReactiveLock::ReleaseMode).
    enum class ReleaseMode : std::uint32_t {
        kTts,
        kMsg,
        kTtsToMsg,
        kMsgToTts,
    };

    struct Node {
        MessageQueueLock::Node msg_node;
    };

    explicit ReactiveMessageLock(std::uint32_t manager_proc,
                                 ReactiveMsgParams params = {})
        : msg_lock_(manager_proc, /*initially_valid=*/false), params_(params)
    {
        mode_->store(static_cast<std::uint32_t>(Mode::kTts));
        tts_lock_.store(kFree);
    }

    ReleaseMode acquire(Node& node)
    {
        // Optimistic shared-memory attempt (free TTS lock <=> TTS valid).
        if (tts_lock_.exchange(kBusy, std::memory_order_acquire) == kFree)
            return ReleaseMode::kTts;
        Mode m = mode();
        for (;;) {
            if (m == Mode::kTts) {
                if (auto r = try_acquire_tts())
                    return *r;
                m = Mode::kMsg;
            } else {
                if (auto r = try_acquire_msg(node))
                    return *r;
                m = Mode::kTts;
            }
        }
    }

    void release(Node& node, ReleaseMode rm)
    {
        switch (rm) {
        case ReleaseMode::kTts:
            tts_lock_.store(kFree, std::memory_order_release);
            break;
        case ReleaseMode::kMsg:
            msg_lock_.unlock();
            break;
        case ReleaseMode::kTtsToMsg:
            // Holder validates the message protocol with itself as
            // holder; TTS lock stays busy (= invalid).
            msg_lock_.validate_held();
            mode_.value.store(static_cast<std::uint32_t>(Mode::kMsg),
                              std::memory_order_release);
            ++protocol_changes_;
            msg_lock_.unlock();
            break;
        case ReleaseMode::kMsgToTts:
            mode_.value.store(static_cast<std::uint32_t>(Mode::kTts),
                              std::memory_order_release);
            ++protocol_changes_;
            msg_lock_.unlock_and_invalidate();
            tts_lock_.store(kFree, std::memory_order_release);
            break;
        }
        (void)node;
    }

    Mode mode() const
    {
        return static_cast<Mode>(mode_.value.load(std::memory_order_relaxed));
    }

    std::uint64_t protocol_changes() const { return protocol_changes_; }

  private:
    static constexpr std::uint32_t kFree = 0;
    static constexpr std::uint32_t kBusy = 1;

    std::optional<ReleaseMode> try_acquire_tts()
    {
        ExpBackoff<sim::SimPlatform> backoff(params_.backoff);
        std::uint32_t retries = 0;
        bool contended = false;
        for (;;) {
            if (tts_lock_.load(std::memory_order_relaxed) == kFree) {
                if (tts_lock_.exchange(kBusy, std::memory_order_acquire) ==
                    kFree)
                    return contended ? ReleaseMode::kTtsToMsg
                                     : ReleaseMode::kTts;
                if (++retries > params_.tts_retry_limit)
                    contended = true;
            }
            backoff.pause();
            if (mode() != Mode::kTts)
                return std::nullopt;
        }
    }

    std::optional<ReleaseMode> try_acquire_msg(Node& node)
    {
        if (!msg_lock_.lock(node.msg_node))
            return std::nullopt;
        // The grant carries the manager's queue-depth hint.
        if (node.msg_node.queue_was_empty) {
            if (++empty_streak_ >= params_.empty_queue_limit)
                return ReleaseMode::kMsgToTts;
        } else {
            empty_streak_ = 0;
        }
        return ReleaseMode::kMsg;
    }

    CacheAligned<sim::Atomic<std::uint32_t>> mode_;
    alignas(kCacheLineSize) sim::Atomic<std::uint32_t> tts_lock_{kFree};
    MessageQueueLock msg_lock_;
    ReactiveMsgParams params_;
    std::uint32_t empty_streak_ = 0;    // in-consensus only
    std::uint64_t protocol_changes_ = 0;
};

/// NodeLock-style adapter over ReactiveMessageLock for generic harnesses.
class ReactiveMessageNodeLock {
  public:
    struct Node {
        ReactiveMessageLock::Node inner;
        ReactiveMessageLock::ReleaseMode rm{};
    };

    explicit ReactiveMessageNodeLock(std::uint32_t manager,
                                     ReactiveMsgParams params = {})
        : inner_(manager, params)
    {
    }

    void lock(Node& n) { n.rm = inner_.acquire(n.inner); }
    void unlock(Node& n) { inner_.release(n.inner, n.rm); }

    ReactiveMessageLock& inner() { return inner_; }

  private:
    ReactiveMessageLock inner_;
};

/// Tunables for the reactive message-passing fetch-and-op.
struct ReactiveMsgFetchOpParams {
    ReactiveMsgParams base;
    /// Consecutive "hot" server observations before moving to the tree.
    std::uint32_t hot_limit = 4;
    /// Root batches below this size count as low combining.
    std::uint32_t combine_min_batch = 2;
    std::uint32_t combine_low_limit = 4;
};

/**
 * Reactive fetch-and-op over {shared-memory TTS-lock counter,
 * message-passing centralized server, message-passing combining tree}.
 */
class ReactiveMessageFetchOp {
  public:
    enum class Mode : std::uint32_t { kTtsLock = 0, kServer = 1, kCombine = 2 };

    struct Node {
        MessageFetchOp::Node server_node;
        MessageCombiningTree::Node tree_node;
    };

    ReactiveMessageFetchOp(std::uint32_t nprocs, std::uint32_t server_proc,
                           FetchOpValue initial = 0,
                           ReactiveMsgFetchOpParams params = {})
        : server_(server_proc, 0, /*initially_valid=*/false),
          tree_(nprocs, 0, /*initially_valid=*/false), params_(params)
    {
        mode_->store(static_cast<std::uint32_t>(Mode::kTtsLock));
        tts_lock_.store(kFree);
        value_.store(initial);
    }

    FetchOpValue fetch_add(Node& node, FetchOpValue delta)
    {
        for (;;) {
            switch (mode()) {
            case Mode::kTtsLock:
                if (auto r = run_tts(delta))
                    return *r;
                break;
            case Mode::kServer:
                if (auto r = run_server(node, delta))
                    return *r;
                break;
            case Mode::kCombine:
                if (auto r = run_combine(node, delta))
                    return *r;
                break;
            }
            sim::pause();
        }
    }

    Mode mode() const
    {
        return static_cast<Mode>(mode_.value.load(std::memory_order_relaxed));
    }

    std::uint64_t protocol_changes() const { return protocol_changes_; }

    /// Quiescent read (call after Machine::run()).
    FetchOpValue read_quiescent() const
    {
        switch (mode()) {
        case Mode::kServer:
            return server_.read_quiescent();
        case Mode::kCombine:
            return tree_.read_quiescent();
        case Mode::kTtsLock:
        default:
            return value_.load(std::memory_order_relaxed);
        }
    }

  private:
    static constexpr std::uint32_t kFree = 0;
    static constexpr std::uint32_t kBusy = 1;

    std::optional<FetchOpValue> run_tts(FetchOpValue delta)
    {
        ExpBackoff<sim::SimPlatform> backoff(params_.base.backoff);
        std::uint32_t retries = 0;
        bool contended = false;
        for (;;) {
            if (tts_lock_.load(std::memory_order_relaxed) == kFree) {
                if (tts_lock_.exchange(kBusy, std::memory_order_acquire) ==
                    kFree) {
                    const FetchOpValue prior =
                        value_.load(std::memory_order_relaxed);
                    value_.store(prior + delta, std::memory_order_relaxed);
                    if (contended) {
                        // Switch to the message server; TTS stays busy.
                        server_.validate(prior + delta);
                        mode_.value.store(
                            static_cast<std::uint32_t>(Mode::kServer),
                            std::memory_order_release);
                        ++protocol_changes_;
                    } else {
                        tts_lock_.store(kFree, std::memory_order_release);
                    }
                    return prior;
                }
                if (++retries > params_.base.tts_retry_limit)
                    contended = true;
            }
            backoff.pause();
            if (mode() != Mode::kTtsLock)
                return std::nullopt;
        }
    }

    std::optional<FetchOpValue> run_server(Node& node, FetchOpValue delta)
    {
        if (!server_.fetch_add(node.server_node, delta))
            return std::nullopt;
        const FetchOpValue prior = node.server_node.prior;
        if (node.server_node.hot) {
            if (++hot_streak_ >= params_.hot_limit) {
                // Escalate to the combining tree. We are *not*
                // in-consensus here, so the change is arbitrated at the
                // server handler: invalidate() returns true only to the
                // single caller that retired the valid protocol.
                if (mode() == Mode::kServer && server_.invalidate()) {
                    tree_.validate(server_.read_quiescent());
                    mode_.value.store(
                        static_cast<std::uint32_t>(Mode::kCombine),
                        std::memory_order_release);
                    ++protocol_changes_;
                }
                hot_streak_ = 0;
            }
        } else {
            hot_streak_ = 0;
        }
        return prior;
    }

    std::optional<FetchOpValue> run_combine(Node& node, FetchOpValue delta)
    {
        if (!tree_.fetch_add(node.tree_node, delta))
            return std::nullopt;
        const FetchOpValue prior = node.tree_node.prior;
        if (node.tree_node.batch < params_.combine_min_batch) {
            if (++low_combine_streak_ >= params_.combine_low_limit) {
                if (mode() == Mode::kCombine && tree_.invalidate()) {
                    server_.validate(tree_.read_quiescent());
                    mode_.value.store(
                        static_cast<std::uint32_t>(Mode::kServer),
                        std::memory_order_release);
                    ++protocol_changes_;
                }
                low_combine_streak_ = 0;
            }
        } else {
            low_combine_streak_ = 0;
        }
        return prior;
    }

    CacheAligned<sim::Atomic<std::uint32_t>> mode_;
    alignas(kCacheLineSize) sim::Atomic<std::uint32_t> tts_lock_{kFree};
    sim::Atomic<FetchOpValue> value_{0};
    MessageFetchOp server_;
    MessageCombiningTree tree_;
    ReactiveMsgFetchOpParams params_;
    std::uint32_t hot_streak_ = 0;          // requester-local heuristic
    std::uint32_t low_combine_streak_ = 0;  // requester-local heuristic
    std::uint64_t protocol_changes_ = 0;
};

}  // namespace reactive::msg
