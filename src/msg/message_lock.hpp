/**
 * @file
 * Message-passing queue lock (thesis Section 3.6).
 *
 * A designated processor acts as the lock manager. Requesters send a
 * REQUEST message and spin on a processor-local flag; the manager's
 * atomic handler either grants immediately or appends the requester to
 * a FIFO queue; RELEASE hands the lock to the next waiter. Exactly two
 * messages per uncontended acquire (request + grant), mirroring the
 * protocol the thesis describes.
 *
 * These protocols target the simulated machine: they need an
 * atomic-message-handler substrate (Alewife's message layer), which is
 * what `sim::Machine::send` models. Manager state is touched only
 * inside handlers running on the manager's processor, so it needs no
 * locks — the atomicity of handlers is the synchronization, exactly as
 * on Alewife [54].
 *
 * The `valid` flag and RETRY replies are the reactive hooks: the
 * manager handler is the protocol's in-consensus point (Section 3.6:
 * "a process reaches in-consensus when executing inside an atomic
 * message handler").
 */
#pragma once

#include <cstdint>
#include <deque>

#include "sim/machine.hpp"

namespace reactive::msg {

/// Reply codes delivered to a requester's local mailbox flag.
enum class LockReply : std::uint8_t { kPending = 0, kGranted, kRetry };

/**
 * Centralized message-passing mutual-exclusion lock.
 *
 * `valid` is manipulated only through manager-side handlers
 * (in-consensus); when invalid, requests are answered with RETRY so the
 * reactive dispatcher can fall back to the shared-memory protocol.
 */
class MessageQueueLock {
  public:
    /// Requester-local mailbox; lives on the caller's stack.
    struct Node {
        LockReply reply = LockReply::kPending;
        bool queue_was_empty = false;  ///< contention hint piggybacked on grant
    };

    /// @param manager processor hosting the lock manager.
    /// @param initially_valid false for reactive composition.
    explicit MessageQueueLock(std::uint32_t manager, bool initially_valid = true)
        : manager_(manager), valid_(initially_valid)
    {
    }

    /**
     * Acquires the lock. Returns true on success; false means the
     * protocol is invalid (retry with the valid protocol).
     */
    bool lock(Node& node)
    {
        node.reply = LockReply::kPending;
        sim::Machine& m = *sim::current_machine();
        const std::uint32_t self = sim::current_cpu();
        Node* pn = &node;
        m.send(manager_, [this, &m, self, pn] {
            if (!valid_) {
                m.send(self, [pn] { pn->reply = LockReply::kRetry; });
            } else if (!held_) {
                held_ = true;
                m.send(self, [pn] {
                    pn->reply = LockReply::kGranted;
                    pn->queue_was_empty = true;
                });
            } else {
                waiters_.push_back({self, pn});
            }
        });
        while (node.reply == LockReply::kPending)
            sim::pause();
        return node.reply == LockReply::kGranted;
    }

    /// Releases the lock (holder only).
    void unlock()
    {
        sim::Machine& m = *sim::current_machine();
        m.send(manager_, [this, &m] { grant_next(m); });
    }

    /**
     * Releases and invalidates the protocol (holder only): queued
     * waiters are answered RETRY. Used by the reactive lock when
     * switching to the shared-memory protocol.
     */
    void unlock_and_invalidate()
    {
        sim::Machine& m = *sim::current_machine();
        m.send(manager_, [this, &m] {
            valid_ = false;
            held_ = false;
            while (!waiters_.empty()) {
                Waiter w = waiters_.front();
                waiters_.pop_front();
                m.send(w.proc, [pn = w.node] { pn->reply = LockReply::kRetry; });
            }
        });
    }

    /**
     * Validates the protocol with the caller as holder (caller must be
     * in-consensus on the previously valid protocol). Spins until the
     * manager acknowledges.
     */
    void validate_held()
    {
        sim::Machine& m = *sim::current_machine();
        const std::uint32_t self = sim::current_cpu();
        bool acked = false;
        bool* pa = &acked;
        m.send(manager_, [this, &m, self, pa] {
            valid_ = true;
            held_ = true;
            m.send(self, [pa] { *pa = true; });
        });
        while (!acked)
            sim::pause();
    }

    std::uint32_t manager() const { return manager_; }

  private:
    struct Waiter {
        std::uint32_t proc;
        Node* node;
    };

    /// Manager-side: pass the lock to the next waiter or free it.
    void grant_next(sim::Machine& m)
    {
        if (waiters_.empty()) {
            held_ = false;
            return;
        }
        Waiter w = waiters_.front();
        waiters_.pop_front();
        const bool was_last = waiters_.empty();
        m.send(w.proc, [pn = w.node, was_last] {
            pn->queue_was_empty = was_last;
            pn->reply = LockReply::kGranted;
        });
    }

    const std::uint32_t manager_;
    // Manager-handler state (no locks needed: handlers are atomic and
    // run only on the manager's processor).
    bool valid_;
    bool held_ = false;
    std::deque<Waiter> waiters_;
};

}  // namespace reactive::msg
