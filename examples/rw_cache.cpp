/**
 * @file
 * Domain example: a shared read-mostly cache with bursty invalidation,
 * guarded by one reactive reader-writer lock.
 *
 * Steady state is lookups (shared acquisitions): the lock sits in the
 * centralized simple protocol, where a lookup costs one fetch&add.
 * Periodically a configuration push invalidates the cache: every
 * worker rebuilds entries under the write lock, writers pile up, and
 * the lock reshapes itself into the fair queue protocol — then drifts
 * back to the cheap centralized protocol when the burst subsides. Same
 * code, no tuning: "the interface to the application program remains
 * constant" (thesis Section 1.1).
 */
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "platform/native_platform.hpp"
#include "rw/reactive_rw_lock.hpp"

using reactive::NativePlatform;

namespace {

using CacheLock = reactive::ReactiveRwLock<NativePlatform>;
const char* mode_name(CacheLock::Mode m)
{
    return m == CacheLock::Mode::kSimple ? "simple" : "queue";
}

/// A toy cache: version-tagged entries rebuilt on invalidation.
struct Cache {
    static constexpr std::size_t kEntries = 256;
    std::vector<long> entries = std::vector<long>(kEntries, 0);
    long version = 0;

    long lookup(std::size_t key) const { return entries[key % kEntries]; }

    /// Rebuilds a block of entries, recomputing each one (a real
    /// invalidation redoes work — parsing, hashing, recomputation —
    /// which is what makes burst-time write holds long enough for
    /// writers to pile up behind each other).
    void rebuild_block(std::size_t key, long ver)
    {
        for (std::size_t i = 0; i < 64; ++i) {
            std::uint64_t h = static_cast<std::uint64_t>(ver) + key + i;
            for (int round = 0; round < 64; ++round) {
                h ^= h << 13;
                h ^= h >> 7;
                h ^= h << 17;
            }
            entries[(key + i * 7) % kEntries] =
                ver | static_cast<long>(h & 0xff) << 32;
        }
        version = ver;
    }
};

}  // namespace

int main()
{
    // Oversubscribe small hosts: the point of the demo is burst-time
    // writer pile-up, which needs more writers than two.
    const unsigned workers =
        std::max(4u, std::min(8u, std::thread::hardware_concurrency()));
    constexpr int kRounds = 5;
    constexpr int kLookupsPerRound = 20000;
    constexpr int kBurstWrites = 400;

    // Small hosts produce little spin pressure; a low retry limit lets
    // the demo's bursts register as contention even with few workers
    // (any failed write attempt counts).
    reactive::ReactiveRwLockParams params;
    params.write_retry_limit = 0;
    CacheLock lock(params);
    Cache cache;
    std::atomic<long> lookups{0};
    std::atomic<bool> mismatch{false};
    std::atomic<int> arrivals{0};  // phase barrier: bursts hit together

    std::printf("rw_cache: %u workers, %d rounds of %d lookups + a burst "
                "of %d invalidations each\n",
                workers, kRounds, kLookupsPerRound, kBurstWrites);
    std::printf("initial protocol: %s\n", mode_name(lock.mode()));

    std::vector<std::thread> pool;
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            for (int round = 0; round < kRounds; ++round) {
                // Read-mostly steady state: serve lookups.
                for (int i = 0; i < kLookupsPerRound; ++i) {
                    CacheLock::Node n;
                    lock.lock_read(n);
                    const long v = cache.lookup(w * 31 + i) & 0xffffffffL;
                    if (v != 0 && v > cache.version)
                        mismatch.store(true);  // torn rebuild visible
                    lock.unlock_read(n);
                    lookups.fetch_add(1, std::memory_order_relaxed);
                }
                // Invalidation burst: wait for the whole pool, then
                // everyone rebuilds entries at once.
                arrivals.fetch_add(1);
                while (arrivals.load() < static_cast<int>(workers) *
                                             (round + 1))
                    std::this_thread::yield();
                for (int i = 0; i < kBurstWrites; ++i) {
                    CacheLock::Node n;
                    lock.lock_write(n);
                    cache.rebuild_block(w * 131 + i, cache.version + 1);
                    lock.unlock_write(n);
                }
            }
        });
    }
    for (auto& t : pool)
        t.join();

    std::printf("served %ld lookups, cache version %ld, consistency %s\n",
                lookups.load(), cache.version,
                mismatch.load() ? "VIOLATED" : "ok");
    std::printf("final protocol: %s after %llu protocol changes\n",
                mode_name(lock.mode()),
                static_cast<unsigned long long>(lock.protocol_changes()));
    return mismatch.load() ? 1 : 0;
}
