/**
 * @file
 * Domain example: a producer-consumer pipeline over J-structures with
 * two-phase waiting (the Chapter 4 scenario).
 *
 * The producer fills a J-structure (an array with full/empty bits);
 * consumer stages read elements, waiting with the two-phase algorithm:
 * short waits are absorbed by polling, long ones block and free the
 * core. Lpoll is set to 0.54x the measured block cost, the thesis'
 * optimal static setting for exponential-ish waits.
 */
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "platform/native_platform.hpp"
#include "waiting/sync/jstructure.hpp"
#include "waiting/wait.hpp"

using reactive::NativePlatform;

int main()
{
    constexpr std::size_t kItems = 4096;
    // On this host a futex block/wake round trip costs a few
    // microseconds; in TSC units that is a few thousand cycles. Use the
    // thesis' 0.54 * B rule of thumb.
    const std::uint64_t lpoll = static_cast<std::uint64_t>(0.54 * 6000);
    reactive::JStructure<long, NativePlatform> stage1(
        kItems, reactive::WaitingAlgorithm::two_phase(lpoll));
    reactive::JStructure<long, NativePlatform> stage2(
        kItems, reactive::WaitingAlgorithm::two_phase(lpoll));

    const auto t0 = std::chrono::steady_clock::now();

    std::thread producer([&] {
        for (std::size_t i = 0; i < kItems; ++i)
            stage1.write(i, static_cast<long>(i));
    });
    std::thread filter([&] {
        for (std::size_t i = 0; i < kItems; ++i) {
            const long v = stage1.read(i);
            stage2.write(i, v * v);
        }
    });
    long checksum = 0;
    std::thread sink([&] {
        for (std::size_t i = 0; i < kItems; ++i)
            checksum += stage2.read(i);
    });

    producer.join();
    filter.join();
    sink.join();

    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    long expect = 0;
    for (std::size_t i = 0; i < kItems; ++i)
        expect += static_cast<long>(i) * static_cast<long>(i);
    std::printf("pipeline: checksum %ld (expected %ld) in %lld us over "
                "%zu items x 3 stages\n",
                checksum, expect, static_cast<long long>(us), kItems);
    return checksum == expect ? 0 : 1;
}
