/**
 * @file
 * Quickstart: the two headline primitives on real threads.
 *
 *  - `ReactiveMutex` — a mutex that starts as a test-and-test-and-set
 *    lock and reshapes itself into an MCS queue lock when contention
 *    rises (and back), exactly as in Lim & Agarwal's reactive
 *    synchronization algorithms.
 *  - `ReactiveFetchOp` — a fetch-and-add counter that escalates from a
 *    TTS-lock-protected variable to a queue lock to a software
 *    combining tree as contention grows.
 *
 * The point of the library: you never pick the protocol; the object
 * monitors contention at run time and picks it for you.
 */
#include <cstdio>
#include <thread>
#include <vector>

#include "core/reactive_fetch_op.hpp"
#include "core/reactive_mutex.hpp"
#include "platform/native_platform.hpp"

using reactive::NativePlatform;

int main()
{
    // ---- reactive mutex ------------------------------------------------
    reactive::ReactiveMutex<NativePlatform> mutex;
    long shared_value = 0;

    const unsigned n_threads =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < n_threads; ++t) {
            pool.emplace_back([&] {
                for (int i = 0; i < 10000; ++i) {
                    reactive::ReactiveMutex<NativePlatform>::Guard g(mutex);
                    ++shared_value;
                }
            });
        }
        for (auto& th : pool)
            th.join();
    }
    std::printf("reactive mutex: %ld increments (expected %ld), "
                "protocol changes: %llu, final protocol: %s\n",
                shared_value, 10000L * n_threads,
                static_cast<unsigned long long>(
                    mutex.lock_object().protocol_changes()),
                mutex.lock_object().mode() ==
                        reactive::ReactiveMutex<
                            NativePlatform>::Lock::Mode::kTts
                    ? "test-and-test-and-set"
                    : "MCS queue");

    // ---- reactive fetch-and-op -----------------------------------------
    reactive::ReactiveFetchOp<NativePlatform> counter(/*width=*/n_threads);
    {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < n_threads; ++t) {
            pool.emplace_back([&] {
                reactive::ReactiveFetchOp<NativePlatform>::Node node;
                for (int i = 0; i < 10000; ++i)
                    counter.fetch_add(node, 1);
            });
        }
        for (auto& th : pool)
            th.join();
    }
    std::printf("reactive fetch-op: value %lld (expected %ld), "
                "protocol changes: %llu\n",
                static_cast<long long>(counter.read()),
                10000L * n_threads,
                static_cast<unsigned long long>(counter.protocol_changes()));
    return 0;
}
