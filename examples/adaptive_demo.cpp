/**
 * @file
 * Demonstration of adaptation in action, on the simulated Alewife
 * machine: watch the reactive lock change protocols as contention
 * rises and falls, and the reactive fetch-and-op walk the
 * TTS-lock -> queue-lock -> combining-tree ladder.
 *
 * (This example uses the simulator substrate so it can put 64
 * processors on the lock regardless of the host; the same objects work
 * on native threads as in quickstart.cpp.)
 */
#include <cstdio>
#include <memory>

#include "core/reactive_fetch_op.hpp"
#include "core/reactive_mutex.hpp"
#include "sim/machine.hpp"
#include "sim/sim_platform.hpp"

using namespace reactive;
using sim::SimPlatform;

namespace {

const char* lock_mode_name(ReactiveLock<SimPlatform>::Mode m)
{
    return m == ReactiveLock<SimPlatform>::Mode::kTts ? "test&test&set"
                                                      : "MCS queue";
}

const char* fop_mode_name(ReactiveFetchOp<SimPlatform>::Mode m)
{
    switch (m) {
    case ReactiveFetchOp<SimPlatform>::Mode::kTtsLock:
        return "tts-lock counter";
    case ReactiveFetchOp<SimPlatform>::Mode::kQueueLock:
        return "queue-lock counter";
    default:
        return "combining tree";
    }
}

void phase(const char* what, std::uint32_t procs,
           const std::shared_ptr<ReactiveNodeLock<SimPlatform>>& lock,
           std::uint32_t iters)
{
    sim::Machine m(procs);
    for (std::uint32_t p = 0; p < procs; ++p) {
        m.spawn(p, [=] {
            for (std::uint32_t i = 0; i < iters; ++i) {
                typename ReactiveNodeLock<SimPlatform>::Node n;
                lock->lock(n);
                sim::delay(100);
                lock->unlock(n);
                sim::delay(sim::random_below(300));
            }
        });
    }
    m.run();
    std::printf("  %-28s -> protocol now: %-14s (changes so far: %llu)\n",
                what, lock_mode_name(lock->inner().mode()),
                static_cast<unsigned long long>(
                    lock->inner().protocol_changes()));
}

}  // namespace

int main()
{
    std::printf("reactive spin lock under changing contention:\n");
    auto lock = std::make_shared<ReactiveNodeLock<SimPlatform>>();
    phase("1 processor (idle)", 1, lock, 200);
    phase("32 processors (storm)", 32, lock, 40);
    phase("1 processor (calm again)", 1, lock, 200);

    std::printf("\nreactive fetch-and-op escalation ladder:\n");
    ReactiveFetchOpParams params;
    params.queue_wait_limit = 800;  // eager, to show all three protocols
    auto counter = std::make_shared<ReactiveFetchOp<SimPlatform>>(64, 0,
                                                                  params);
    auto fop_phase = [&](const char* what, std::uint32_t procs,
                         std::uint32_t iters) {
        sim::Machine m(procs);
        for (std::uint32_t p = 0; p < procs; ++p) {
            m.spawn(p, [=] {
                typename ReactiveFetchOp<SimPlatform>::Node n;
                for (std::uint32_t i = 0; i < iters; ++i) {
                    counter->fetch_add(n, 1);
                    sim::delay(sim::random_below(200));
                }
            });
        }
        m.run();
        std::printf("  %-28s -> protocol now: %-18s (value %lld)\n", what,
                    fop_mode_name(counter->mode()),
                    static_cast<long long>(counter->read()));
    };
    fop_phase("1 processor", 1, 100);
    fop_phase("8 processors", 8, 60);
    fop_phase("64 processors (flood)", 64, 40);
    fop_phase("1 processor (drained)", 1, 200);
    return 0;
}
