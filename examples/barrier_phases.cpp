/**
 * @file
 * Domain example: a phased computation (the bulk-synchronous pattern —
 * compute, barrier, repeat) whose load profile changes at run time,
 * synchronized by one reactive barrier.
 *
 * Even-numbered phases are balanced: every worker does the same small
 * amount of work, arrivals bunch up, and the arrival counter becomes
 * the hotspot — the combining tree's regime. Odd-numbered phases are
 * imbalanced: worker 0 carries a much larger partition and every
 * episode waits on it, so the cheapest barrier is the one that adds the
 * least latency to the straggler's solo pass — the centralized
 * counter's regime. The reactive barrier watches the arrival spread of
 * each episode and reshapes itself across the phase boundary. Same
 * code, no tuning: "the interface to the application program remains
 * constant" (thesis Section 1.1).
 */
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "barrier/dissemination_barrier.hpp"
#include "barrier/reactive_barrier.hpp"
#include "core/protocol_set.hpp"
#include "platform/native_platform.hpp"

using reactive::NativePlatform;

namespace {

// The full three-protocol set (ProtocolSet API): central counter,
// fan-in-4 combining tree, dissemination — selected at run time by the
// measured ladder policy.
using PhaseBarrier = reactive::ReactiveBarrier<
    NativePlatform, reactive::CalibratedLadderPolicy,
    reactive::ProtocolSet<reactive::CentralBarrier<NativePlatform>,
                          reactive::CombiningTreeBarrier<NativePlatform>,
                          reactive::DisseminationBarrier<NativePlatform>>>;

const char* mode_name(PhaseBarrier::Mode m)
{
    switch (m) {
    case PhaseBarrier::Mode::kCentral:
        return "central";
    case PhaseBarrier::Mode::kTree:
        return "tree";
    case PhaseBarrier::Mode::kDissemination:
        return "dissem";
    }
    return "?";
}

}  // namespace

int main()
{
    const unsigned workers =
        std::max(4u, std::min(8u, std::thread::hardware_concurrency()));
    constexpr int kPhases = 6;
    constexpr int kEpisodesPerPhase = 400;
    constexpr std::uint64_t kBalancedWork = 2000;     // TSC cycles
    constexpr std::uint64_t kImbalancedWork = 400000; // worker 0, odd phases

    // Traffic-free monitoring: episode periods rank the three rungs,
    // completer-identity streaks detect the imbalanced phases — no
    // TSC-threshold tuning needed beyond the contended-RMW budget.
    reactive::ReactiveBarrierParams params;
    params.free_monitoring = true;
    params.contended_rmw_cycles = 2000;  // native TSC budget
    reactive::CalibratedLadderPolicy::Params policy_params;
    policy_params.protocols = 3;
    policy_params.probe_period = 8;
    policy_params.probe_backoff_cap = 7;
    PhaseBarrier barrier(workers, params,
                         reactive::CalibratedLadderPolicy(policy_params));

    std::printf("barrier_phases: %u workers, %d phases of %d episodes "
                "(balanced <-> one imbalanced partition)\n",
                workers, kPhases, kEpisodesPerPhase);
    std::printf("initial protocol: %s\n", mode_name(barrier.mode()));

    std::vector<std::atomic<std::uint64_t>> work_done(workers);
    for (auto& w : work_done)
        w.store(0);
    std::atomic<int> ordering_violations{0};
    std::vector<std::atomic<std::uint32_t>> progress(workers);
    for (auto& p : progress)
        p.store(0);

    std::vector<std::thread> pool;
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            PhaseBarrier::Node node;
            std::uint32_t episode = 0;
            for (int phase = 0; phase < kPhases; ++phase) {
                const bool imbalanced = phase % 2 == 1;
                for (int e = 0; e < kEpisodesPerPhase; ++e, ++episode) {
                    const std::uint64_t grain =
                        (imbalanced && w == 0) ? kImbalancedWork
                                               : kBalancedWork;
                    NativePlatform::delay(grain);  // this partition's work
                    work_done[w].fetch_add(grain,
                                           std::memory_order_relaxed);
                    progress[w].store(episode + 1,
                                      std::memory_order_relaxed);
                    barrier.arrive(node);
                    // Bulk-synchronous invariant: after the barrier,
                    // every partition has finished this episode.
                    for (unsigned j = 0; j < workers; ++j)
                        if (progress[j].load(std::memory_order_relaxed) <
                            episode + 1)
                            ordering_violations.fetch_add(1);
                }
                // Reading barrier state here is race-free even though
                // other workers already run the next phase: no episode
                // can complete — and no completer can touch the
                // counters — until worker 0 arrives again.
                if (w == 0) {
                    std::printf(
                        "phase %d (%s): protocol now %-7s after %llu "
                        "protocol changes\n",
                        phase, imbalanced ? "imbalanced" : "balanced  ",
                        mode_name(barrier.mode()),
                        static_cast<unsigned long long>(
                            barrier.protocol_changes()));
                }
            }
        });
    }
    for (auto& t : pool)
        t.join();

    std::uint64_t total = 0;
    for (auto& w : work_done)
        total += w.load();
    std::printf("total work: %llu cycles across %u partitions, ordering %s\n",
                static_cast<unsigned long long>(total), workers,
                ordering_violations.load() == 0 ? "ok" : "VIOLATED");
    std::printf("final protocol: %s after %llu protocol changes\n",
                mode_name(barrier.mode()),
                static_cast<unsigned long long>(barrier.protocol_changes()));
    return ordering_violations.load() == 0 ? 0 : 1;
}
