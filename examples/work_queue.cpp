/**
 * @file
 * Domain example: a parallel branch-and-bound work queue (the TSP/AQ
 * scenario from the thesis' evaluation).
 *
 * The queue's enqueue/dequeue tickets are reactive fetch-and-add
 * counters: at low worker counts they behave like a cheap lock-protected
 * counter; flood the queue with workers and they reshape into a
 * combining tree — no tuning, same code.
 */
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/reactive_fetch_op.hpp"
#include "platform/native_platform.hpp"

using reactive::NativePlatform;

namespace {

/// Bounded MPMC FIFO with ticket dispensers and full/empty slots.
class WorkQueue {
  public:
    explicit WorkQueue(std::size_t capacity, unsigned workers)
        : slots_(capacity), head_(workers), tail_(workers)
    {
    }

    /// Enqueues one work item; returns false when capacity is exhausted.
    bool push(int item)
    {
        reactive::ReactiveFetchOp<NativePlatform>::Node node;
        const auto ticket =
            static_cast<std::size_t>(tail_.fetch_add(node, 1));
        if (ticket >= slots_.size())
            return false;
        slots_[ticket].item = item;
        slots_[ticket].full.store(1, std::memory_order_release);
        return true;
    }

    /// Dequeues one item; returns false when the queue is drained.
    bool pop(int& item, std::size_t produced_bound)
    {
        reactive::ReactiveFetchOp<NativePlatform>::Node node;
        const auto ticket =
            static_cast<std::size_t>(head_.fetch_add(node, 1));
        if (ticket >= produced_bound || ticket >= slots_.size())
            return false;
        while (slots_[ticket].full.load(std::memory_order_acquire) == 0)
            NativePlatform::pause();
        item = slots_[ticket].item;
        return true;
    }

  private:
    struct Slot {
        std::atomic<std::uint32_t> full{0};
        int item = 0;
    };
    std::vector<Slot> slots_;
    reactive::ReactiveFetchOp<NativePlatform> head_;
    reactive::ReactiveFetchOp<NativePlatform> tail_;
};

}  // namespace

int main()
{
    const unsigned workers =
        std::max(2u, std::min(4u, std::thread::hardware_concurrency()));
    const int kTasks = 20000;
    WorkQueue q(kTasks, workers);

    // Seed the queue with root tasks.
    for (int i = 0; i < 64; ++i)
        q.push(i);

    std::atomic<long> best{1 << 30};  // the bound of branch-and-bound
    std::atomic<int> produced{64};
    std::atomic<int> consumed{0};

    std::vector<std::thread> pool;
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            int item;
            while (consumed.load() < kTasks) {
                if (!q.pop(item, static_cast<std::size_t>(produced.load())))
                    break;
                consumed.fetch_add(1);
                // "Expand" the node: maybe improve the bound, maybe
                // spawn children.
                const long candidate = 1000 + (item * 2654435761u) % 100000;
                long cur = best.load();
                while (candidate < cur &&
                       !best.compare_exchange_weak(cur, candidate)) {
                }
                if (produced.load() < kTasks) {
                    for (int c = 0; c < 2; ++c) {
                        if (produced.fetch_add(1) < kTasks)
                            q.push(item * 2 + c);
                        else
                            break;
                    }
                }
            }
        });
    }
    for (auto& th : pool)
        th.join();

    std::printf("work_queue: consumed %d tasks with %u workers, "
                "best bound %ld\n",
                consumed.load(), workers, best.load());
    return 0;
}
